"""Lockstep batched execution of transient scenario sweeps.

The engine advances every scenario of a sweep through the *same* time step
together, which is what unlocks the sharing:

* **static MNA assembly and LU factorization** — scenarios with equal
  corner values share one :class:`~repro.perf.mna.SharedStaticContext`;
  the static matrix is stamped once and, for purely linear circuits,
  LU-factored exactly once for the whole batch;
* **linear block solves** — all linear scenarios of a static group are
  advanced with one multi-right-hand-side ``LU x = B`` solve per time step
  instead of one Newton loop with per-scenario solves each;
* **batched RBF evaluation** — the macromodel ports of all scenarios that
  share a device variant are evaluated in one vectorised Gaussian pass per
  Newton iteration (:func:`repro.perf.rbf_fast.prewarm_ports`), so the
  per-scenario stamping code hits a warm cache.

Each nonlinear scenario still executes exactly the Newton iterations it
would run standalone — the batch changes where the arithmetic happens, not
what is computed — so batched and sequential waveforms agree to ~1e-12
relative (``tests/test_sweep.py`` pins this).  Purely linear scenarios are
advanced by one exact block solve per step: their waveforms are likewise
equivalent, but their recorded ``newton_iterations`` is 1 per step, not
the damped-update/confirming-re-solve count a standalone run reports —
iteration counts are solver bookkeeping, and the waveforms are the
contract.
"""

from __future__ import annotations

import time as _time
import warnings
from collections import defaultdict
from typing import Callable, Dict, Iterable, Optional, Sequence

import numpy as np

from repro import perf
from repro.circuits.netlist import Circuit
from repro.circuits.transient import TransientOptions, TransientSolver
from repro.perf.mna import SharedStaticContext
from repro.perf.rbf_fast import BatchedPrepare, batch_key, prewarm_ports
from repro.resilience import (
    BACKEND_ERROR,
    NAN_INF,
    NON_CONVERGENCE,
    SINGULAR_MATRIX,
    RunHealth,
    SolveFailure,
    SolverError,
)
from repro.resilience import faults as _faults
from repro.sweep.result import SweepResult
from repro.sweep.scenario import Scenario

__all__ = ["CircuitSweep"]


def _port_voltage(x: np.ndarray, fast_idx) -> float:
    """Candidate port voltage, computed exactly like the element stamp."""
    i_node, i_ref = fast_idx
    vn = x.item(i_node) if i_node is not None else 0.0
    vr = x.item(i_ref) if i_ref is not None else 0.0
    return vn - vr


class CircuitSweep:
    """A batch of transient scenarios over one parametrised circuit.

    Parameters
    ----------
    builder:
        ``builder(scenario) -> Circuit``; must return a fresh circuit per
        call.  Scenarios sharing a :meth:`~repro.sweep.scenario.Scenario.static_key`
        must produce identical static stamps (see :mod:`repro.sweep.scenario`).
    scenarios:
        The scenarios to run (unique names).
    dt, duration:
        Common time step and span; lockstep batching requires them equal
        across the batch.
    record_nodes, record_branches:
        Forwarded to :meth:`repro.circuits.transient.TransientSolver.begin`.
    options:
        Transient solver options shared by every scenario (including the
        linear-solver ``backend`` of the fast MNA path).
    initial_voltages:
        Optional ``initial_voltages(scenario) -> dict | None`` hook.
    batch_prepare:
        Fold the per-step RBF regressor preparation of all lockstep
        scenarios in one stacked pass per step
        (:class:`repro.perf.rbf_fast.BatchedPrepare`); spec-addressable as
        the ``engine.batch_prepare`` job option.  Fast path only.
    """

    def __init__(
        self,
        builder: Callable[[Scenario], Circuit],
        scenarios: Sequence[Scenario],
        dt: float,
        duration: float,
        record_nodes: Optional[Iterable[str]] = None,
        record_branches: Optional[Sequence[tuple[str, int]]] = None,
        options: TransientOptions | None = None,
        initial_voltages: Optional[Callable[[Scenario], Optional[Dict[str, float]]]] = None,
        batch_prepare: bool = False,
    ):
        scenarios = list(scenarios)
        if not scenarios:
            raise ValueError("a sweep needs at least one scenario")
        names = [sc.name for sc in scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario names must be unique, got {names}")
        self.builder = builder
        self.scenarios = scenarios
        self.dt = float(dt)
        self.duration = float(duration)
        self.record_nodes = list(record_nodes) if record_nodes is not None else None
        self.record_branches = list(record_branches) if record_branches is not None else None
        self.options = options or TransientOptions()
        self.initial_voltages = initial_voltages
        self.batch_prepare = bool(batch_prepare)

    # -- sequential oracle -------------------------------------------------
    def _solo_run(self, scenario: Scenario):
        """Run one scenario standalone; ``(solver, result | None, failure | None)``.

        A typed :class:`~repro.resilience.SolverError` is caught and
        returned as its structured failure record — fault isolation means
        one scenario's failure never aborts the rest of the sweep.
        """
        solver = TransientSolver(
            self.builder(scenario), self.dt, options=self.options,
            label=scenario.name,
        )
        iv = self.initial_voltages(scenario) if self.initial_voltages else None
        try:
            result = solver.run(
                self.duration,
                record_nodes=self.record_nodes,
                record_branches=self.record_branches,
                initial_voltages=iv,
            )
        except SolverError as exc:
            return solver, None, exc.failure
        return solver, result, None

    def run_sequential(self) -> SweepResult:
        """Run every scenario as an independent cold transient (no sharing).

        This is the equivalence oracle and the timing baseline the batched
        path is measured against: each scenario pays its own compile,
        assembly, factorization and per-step solves.  Scenarios are fault
        isolated: a failing scenario is reported in the partial result's
        ``status``/``failures`` instead of aborting the sweep.
        """
        start = _time.perf_counter()
        results: Dict[str, object] = {}
        status: Dict[str, str] = {}
        failures: Dict[str, dict] = {}
        health = RunHealth()
        times = None
        for scenario in self.scenarios:
            solver, result, failure = self._solo_run(scenario)
            health.merge(solver.health)
            if failure is not None:
                status[scenario.name] = "failed"
                failures[scenario.name] = failure.to_dict()
                continue
            results[scenario.name] = result
            status[scenario.name] = "ok"
            times = result.times
        return SweepResult(
            times=times,
            scenarios=self.scenarios,
            results=results,
            perf_stats={
                "mode": "sequential",
                "n_scenarios": len(self.scenarios),
                "health": health.to_dict(),
            },
            wall_time=_time.perf_counter() - start,
            status=status,
            failures=failures,
        )

    # -- batched lockstep run ----------------------------------------------
    def run(self) -> SweepResult:
        """Run the whole batch through one shared engine context."""
        start = _time.perf_counter()
        fast = perf.resolve_fast(self.options.fast)

        contexts: Dict[object, SharedStaticContext] = {}
        solvers: list[TransientSolver] = []
        for scenario in self.scenarios:
            shared = None
            if fast:
                shared = contexts.setdefault(scenario.static_key(), SharedStaticContext())
            solvers.append(
                TransientSolver(
                    self.builder(scenario), self.dt, options=self.options,
                    shared_static=shared, label=scenario.name,
                )
            )

        runs = []
        for scenario, solver in zip(self.scenarios, solvers):
            iv = self.initial_voltages(scenario) if self.initial_voltages else None
            runs.append(
                solver.begin(
                    self.duration,
                    record_nodes=self.record_nodes,
                    record_branches=self.record_branches,
                    initial_voltages=iv,
                )
            )
        n_steps = runs[0].n_steps
        if any(run.n_steps != n_steps for run in runs):
            raise ValueError("lockstep sweep requires an equal step count per scenario")

        # Scenarios advanced by one block solve per step: the members of a
        # shared static context that are all purely linear.
        direct: list[tuple[SharedStaticContext, list[int]]] = []
        newton_indices = list(range(len(runs)))
        if fast:
            members: Dict[SharedStaticContext, list[int]] = defaultdict(list)
            for idx, run in enumerate(runs):
                members[run.assembler._shared].append(idx)
            for ctx, idxs in members.items():
                if all(runs[i].assembler.linear_only for i in idxs):
                    direct.append((ctx, idxs))
            direct_set = {i for _, idxs in direct for i in idxs}
            newton_indices = [i for i in range(len(runs)) if i not in direct_set]

        # Macromodel ports grouped across scenarios by device variant; each
        # group of >= 2 live ports gets one vectorised basis evaluation per
        # lockstep Newton iteration.
        port_groups: list[list[tuple[int, object]]] = []
        if fast:
            grouped = defaultdict(list)
            for idx in newton_indices:
                for element in solvers[idx].circuit.elements:
                    port = getattr(element, "port", None)
                    evaluator = getattr(port, "_fast", None)
                    fast_idx = getattr(element, "_fast_idx", None)
                    if port is None or evaluator is None or fast_idx is None:
                        continue
                    key = batch_key(port.model)
                    if key is not None:
                        grouped[key].append((idx, element))
            port_groups = [group for group in grouped.values() if len(group) >= 2]

        # Every counter is present in both modes (zeroed on the reference
        # path) so reports can read them unconditionally.
        stats = {
            "mode": "fast" if fast else "reference",
            "n_scenarios": len(self.scenarios),
            "static_groups": len(contexts) if fast else 0,
            "direct_linear_scenarios": sorted(
                self.scenarios[i].name for _, idxs in direct for i in idxs
            ),
            "batched_port_groups": len(port_groups),
            "batched_rbf_evals": 0,
            "batched_prepare_folds": 0,
            "batched_prepare_scenarios": 0,
            "shared_factorizations": 0,
            "static_reuses": 0,
            "block_solves": 0,
            "symbolic_factorizations": 0,
            "plan_cache_hits": 0,
            "plan_cache_misses": 0,
        }
        prepare_batcher = BatchedPrepare() if (fast and self.batch_prepare) else None

        cap = self.options.max_newton_iterations
        rhs_blocks = [
            np.empty((runs[idxs[0]].x.size, len(idxs))) for _, idxs in direct
        ]
        #: quarantined scenario index -> failure that evicted it from the batch
        failed: Dict[int, SolveFailure] = {}

        def quarantine(i: int, kind: str, message: str, **context) -> None:
            run = runs[i]
            run.step_converged = False
            failed[i] = solvers[i]._record_failure(run, kind, message, **context)

        def handle_nonconverged(i: int, injected: bool) -> None:
            # An exhausted (or fault-forced) Newton loop follows the same
            # on_nonconvergence policy as a standalone run: strict default
            # quarantines the scenario, warn/ignore commit with telemetry.
            run = runs[i]
            if self.options.on_nonconvergence == "raise":
                context = {"injected": True} if injected else {"iterations": run.newton_count}
                quarantine(
                    i, NON_CONVERGENCE,
                    "injected non-convergence" if injected
                    else f"Newton cap of {cap} iterations hit",
                    **context,
                )
                return
            solver, run = solvers[i], runs[i]
            solver.health.record(SolveFailure(
                NON_CONVERGENCE, step=run.step, scenario=self.scenarios[i].name,
                residual=run.last_residual,
                message="injected non-convergence" if injected
                else f"Newton cap of {cap} iterations hit",
            ))
            solver.health.nonconverged_commits += 1
            run.step_converged = True  # commit per policy
            if self.options.on_nonconvergence == "warn":
                warnings.warn(
                    f"sweep scenario {self.scenarios[i].name!r} committed "
                    f"step {run.step} without convergence",
                    RuntimeWarning,
                    stacklevel=3,
                )

        for step in range(n_steps):
            for i, (solver, run) in enumerate(zip(solvers, runs)):
                if i not in failed:
                    solver.begin_step(run)

            for (ctx, idxs), rhs_block in zip(direct, rhs_blocks):
                live = [i for i in idxs if i not in failed]
                if not live:
                    continue
                block = rhs_block[:, : len(live)]
                for col, i in enumerate(live):
                    block[:, col] = runs[i].assembler.rhs_static
                try:
                    solution = ctx.solve_block(block)
                except np.linalg.LinAlgError as exc:
                    for i in live:
                        quarantine(i, SINGULAR_MATRIX,
                                   str(exc) or "singular block solve",
                                   site="solve_block")
                    continue
                except RuntimeError as exc:
                    for i in live:
                        quarantine(i, BACKEND_ERROR,
                                   str(exc) or type(exc).__name__,
                                   site="solve_block",
                                   exception=type(exc).__name__)
                    continue
                for col, i in enumerate(live):
                    run = runs[i]
                    name = self.scenarios[i].name
                    column = solution[:, col]
                    if _faults.PLAN is not None and _faults.take("nan", run.step, name):
                        column = np.full_like(column, np.nan)
                    if not np.all(np.isfinite(column)):
                        quarantine(i, NAN_INF,
                                   "non-finite block-solve solution",
                                   site="solve_block")
                        continue
                    if _faults.PLAN is not None and _faults.take(
                        "nonconvergence", run.step, name
                    ):
                        handle_nonconverged(i, injected=True)
                        if i in failed:
                            continue
                    run.x = np.ascontiguousarray(column)
                    run.newton_count = 1
                    run.step_converged = True

            active = {i for i in newton_indices if i not in failed}
            # Forced non-convergence faults are consumed once per step
            # attempt, matching the standalone solver's semantics.
            forced: set[int] = set()
            if _faults.PLAN is not None:
                for i in tuple(active):
                    if _faults.take("nonconvergence", runs[i].step,
                                    self.scenarios[i].name):
                        forced.add(i)
            while active:
                for group in port_groups:
                    live = [(idx, el) for idx, el in group if idx in active]
                    if len(live) < 2:
                        continue
                    ports = [el.port for _, el in live]
                    vs = [_port_voltage(runs[idx].x, el._fast_idx) for idx, el in live]
                    if prewarm_ports(
                        ports, vs, runs[live[0][0]].t, batch_prepare=prepare_batcher
                    ):
                        stats["batched_rbf_evals"] += len(live)
                for i in tuple(active):
                    solver, run = solvers[i], runs[i]
                    try:
                        solver.newton_iteration(run)
                    except np.linalg.LinAlgError as exc:
                        active.discard(i)
                        quarantine(i, SINGULAR_MATRIX,
                                   str(exc) or "singular matrix",
                                   site="newton_iteration")
                        continue
                    except RuntimeError as exc:
                        active.discard(i)
                        quarantine(i, BACKEND_ERROR,
                                   str(exc) or type(exc).__name__,
                                   site="newton_iteration",
                                   exception=type(exc).__name__)
                        continue
                    if run.failure is not None:
                        # newton_iteration already recorded it (NaN guard)
                        active.discard(i)
                        failed[i] = run.failure
                        continue
                    if run.step_converged or run.newton_count >= cap:
                        active.discard(i)
                        if i in forced or not run.step_converged:
                            handle_nonconverged(i, injected=i in forced)

            for i, (solver, run) in enumerate(zip(solvers, runs)):
                if i not in failed:
                    solver.end_step(run)

        results: Dict[str, object] = {}
        status: Dict[str, str] = {}
        failures_out: Dict[str, dict] = {}
        for i, (scenario, solver, run) in enumerate(zip(self.scenarios, solvers, runs)):
            if i in failed:
                solver._sync_health()  # failed runs never reach finish()
                continue
            results[scenario.name] = solver.finish(run)
            status[scenario.name] = "ok"

        # Quarantined scenarios get one solo retry outside the lockstep
        # batch: a transient fault (consumed injection, poisoned shared
        # state) completes cleanly; a persistent one yields its structured
        # failure in the partial result.
        solo_solvers: list[TransientSolver] = []
        for i in sorted(failed):
            scenario = self.scenarios[i]
            solo_solver, result, failure = self._solo_run(scenario)
            solo_solvers.append(solo_solver)
            if result is not None:
                results[scenario.name] = result
                status[scenario.name] = "recovered"
            else:
                status[scenario.name] = "failed"
                failures_out[scenario.name] = failure.to_dict()
        if fast:
            stats["shared_factorizations"] = sum(
                ctx.stats["factorizations"] for ctx in contexts.values()
            )
            stats["static_reuses"] = sum(
                ctx.stats["static_reuses"] for ctx in contexts.values()
            )
            stats["block_solves"] = sum(
                ctx.stats["block_solves"] for ctx in contexts.values()
            )
            if prepare_batcher is not None:
                stats["batched_prepare_folds"] = prepare_batcher.stats["batched_folds"]
                stats["batched_prepare_scenarios"] = (
                    prepare_batcher.stats["folded_scenarios"]
                )
            # Symbolic-setup counters summed over every solver that ran,
            # including solo retries (their cold re-runs pay real setup).
            for key in ("symbolic_factorizations", "plan_cache_hits",
                        "plan_cache_misses"):
                stats[key] = sum(
                    int(solver.perf_stats.get(key, 0))
                    for solver in (*solvers, *solo_solvers)
                )
            stats["per_scenario"] = {
                scenario.name: solver.perf_stats
                for scenario, solver in zip(self.scenarios, solvers)
            }
        health = RunHealth()
        for solver in solvers:
            health.merge(solver.health)
        for ctx in contexts.values():
            health.merge(ctx.health)
        for solver in solo_solvers:
            health.merge(solver.health)
        stats["health"] = health.to_dict()
        stats["quarantined_scenarios"] = sorted(
            self.scenarios[i].name for i in failed
        )
        stats["solo_retries"] = len(solo_solvers)
        return SweepResult(
            times=runs[0].times,
            scenarios=self.scenarios,
            results=results,
            perf_stats=stats,
            wall_time=_time.perf_counter() - start,
            status=status,
            failures=failures_out,
        )
