"""Eye-diagram and worst-case-corner reporting over a sweep.

The point of running many scenarios is the summary: which bit pattern /
corner combination closes the eye the most.  This module folds every
scenario of a :class:`~repro.sweep.result.SweepResult` through
:mod:`repro.waveforms.eye` and reports per-scenario eye height/width plus
the worst-case scenario of each metric.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.experiments.reporting import format_table
from repro.sweep.result import SweepResult

__all__ = ["EyeReportRow", "SweepEyeReport", "eye_report"]


@dataclasses.dataclass(frozen=True)
class EyeReportRow:
    """Eye metrics of one scenario."""

    scenario: str
    bit_pattern: str | None
    eye_height: float
    eye_width: float
    v_min: float
    v_max: float


@dataclasses.dataclass
class SweepEyeReport:
    """Per-scenario eye metrics and the worst-case corners of the sweep.

    Failed scenarios of a partial sweep have no waveform to fold; they are
    listed in :attr:`failed` instead of contributing rows, so the
    worst-case corners summarise only the scenarios that completed.
    """

    node: str
    bit_time: float
    rows: List[EyeReportRow]
    failed: List[str] = dataclasses.field(default_factory=list)

    @property
    def worst_height(self) -> EyeReportRow:
        """Scenario with the smallest vertical eye opening."""
        return min(self.rows, key=lambda row: row.eye_height)

    @property
    def worst_width(self) -> EyeReportRow:
        """Scenario with the smallest horizontal eye opening."""
        return min(self.rows, key=lambda row: row.eye_width)

    def to_dict(self) -> dict:
        """JSON-serialisable summary (benchmarks persist this)."""
        return {
            "node": self.node,
            "bit_time": self.bit_time,
            "scenarios": [dataclasses.asdict(row) for row in self.rows],
            "worst_height_scenario": self.worst_height.scenario,
            "worst_width_scenario": self.worst_width.scenario,
            "failed_scenarios": list(self.failed),
        }

    def format(self) -> str:
        """Plain-text table of the report."""
        table = format_table(
            ["scenario", "pattern", "eye height (V)", "eye width (ps)", "min (V)", "max (V)"],
            [
                [
                    row.scenario,
                    row.bit_pattern or "-",
                    row.eye_height,
                    row.eye_width * 1e12,
                    row.v_min,
                    row.v_max,
                ]
                for row in self.rows
            ],
        )
        worst = (
            f"worst eye height: {self.worst_height.scenario} "
            f"({self.worst_height.eye_height:.4g} V)\n"
            f"worst eye width:  {self.worst_width.scenario} "
            f"({self.worst_width.eye_width*1e12:.4g} ps)"
        )
        if self.failed:
            worst += f"\nfailed scenarios (no eye): {', '.join(self.failed)}"
        return f"{table}\n{worst}"


def eye_report(
    sweep: SweepResult,
    node: str,
    bit_time: float,
    low: float,
    high: float,
    t_start: float = 0.0,
) -> SweepEyeReport:
    """Fold every scenario of a sweep into eye metrics at one node.

    Parameters
    ----------
    sweep:
        The finished sweep.
    node:
        Recorded node whose waveform is folded.
    bit_time:
        Eye folding period (the stimulus bit time).
    low, high:
        Logic levels used for the height/width thresholds.
    t_start:
        First bit boundary; earlier samples (start-up transients) are
        discarded before folding.
    """
    rows = []
    failed = [sc.name for sc in sweep.scenarios if sc.name not in sweep.results]
    for scenario in sweep.scenarios:
        if scenario.name not in sweep.results:
            continue
        eye = sweep.eye(scenario.name, node, bit_time, t_start=t_start)
        metrics = eye.metrics(low, high)
        rows.append(
            EyeReportRow(
                scenario=scenario.name,
                bit_pattern=scenario.bit_pattern,
                eye_height=metrics["eye_height"],
                eye_width=metrics["eye_width"],
                v_min=metrics["v_min"],
                v_max=metrics["v_max"],
            )
        )
    if not rows:
        raise ValueError(
            f"no completed scenarios to report on (failed: {failed})"
        )
    return SweepEyeReport(node=node, bit_time=bit_time, rows=rows, failed=failed)
