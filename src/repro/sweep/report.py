"""Eye-diagram and worst-case-corner reporting over a sweep.

The point of running many scenarios is the summary: which bit pattern /
corner combination closes the eye the most.  This module folds every
scenario of a :class:`~repro.sweep.result.SweepResult` through
:mod:`repro.waveforms.eye` and reports per-scenario eye height/width plus
the worst-case scenario of each metric.  The statistical layer on top
(:mod:`repro.sweep.montecarlo`) aggregates thousands of such metrics
through :func:`metric_distribution` (percentiles + histogram) and
:func:`bathtub_curve` (BER-style per-phase violation rates).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.experiments.reporting import format_table
from repro.sweep.result import SweepResult
from repro.waveforms.eye import EyeDiagram

__all__ = [
    "EyeReportRow",
    "SweepEyeReport",
    "eye_report",
    "metric_distribution",
    "bathtub_curve",
]

#: percentile levels of a metric distribution summary
_PERCENTILES = (1, 5, 25, 50, 75, 95, 99)


@dataclasses.dataclass(frozen=True)
class EyeReportRow:
    """Eye metrics of one scenario."""

    scenario: str
    bit_pattern: str | None
    eye_height: float
    eye_width: float
    v_min: float
    v_max: float


@dataclasses.dataclass
class SweepEyeReport:
    """Per-scenario eye metrics and the worst-case corners of the sweep.

    Failed scenarios of a partial sweep have no waveform to fold; they are
    listed in :attr:`failed` instead of contributing rows, so the
    worst-case corners summarise only the scenarios that completed.
    """

    node: str
    bit_time: float
    rows: List[EyeReportRow]
    failed: List[str] = dataclasses.field(default_factory=list)

    @property
    def worst_height(self) -> EyeReportRow:
        """Scenario with the smallest vertical eye opening."""
        return min(self.rows, key=lambda row: row.eye_height)

    @property
    def worst_width(self) -> EyeReportRow:
        """Scenario with the smallest horizontal eye opening."""
        return min(self.rows, key=lambda row: row.eye_width)

    def to_dict(self) -> dict:
        """JSON-serialisable summary (benchmarks persist this)."""
        return {
            "node": self.node,
            "bit_time": self.bit_time,
            "scenarios": [dataclasses.asdict(row) for row in self.rows],
            "worst_height_scenario": self.worst_height.scenario,
            "worst_width_scenario": self.worst_width.scenario,
            "failed_scenarios": list(self.failed),
        }

    def format(self) -> str:
        """Plain-text table of the report."""
        table = format_table(
            ["scenario", "pattern", "eye height (V)", "eye width (ps)", "min (V)", "max (V)"],
            [
                [
                    row.scenario,
                    row.bit_pattern or "-",
                    row.eye_height,
                    row.eye_width * 1e12,
                    row.v_min,
                    row.v_max,
                ]
                for row in self.rows
            ],
        )
        worst = (
            f"worst eye height: {self.worst_height.scenario} "
            f"({self.worst_height.eye_height:.4g} V)\n"
            f"worst eye width:  {self.worst_width.scenario} "
            f"({self.worst_width.eye_width*1e12:.4g} ps)"
        )
        if self.failed:
            worst += f"\nfailed scenarios (no eye): {', '.join(self.failed)}"
        return f"{table}\n{worst}"


def eye_report(
    sweep: SweepResult,
    node: str,
    bit_time: float,
    low: float,
    high: float,
    t_start: float = 0.0,
) -> SweepEyeReport:
    """Fold every scenario of a sweep into eye metrics at one node.

    Parameters
    ----------
    sweep:
        The finished sweep.
    node:
        Recorded node whose waveform is folded.
    bit_time:
        Eye folding period (the stimulus bit time).
    low, high:
        Logic levels used for the height/width thresholds.
    t_start:
        First bit boundary; earlier samples (start-up transients) are
        discarded before folding.
    """
    rows = []
    failed = [sc.name for sc in sweep.scenarios if sc.name not in sweep.results]
    for scenario in sweep.scenarios:
        if scenario.name not in sweep.results:
            continue
        eye = sweep.eye(scenario.name, node, bit_time, t_start=t_start)
        metrics = eye.metrics(low, high)
        rows.append(
            EyeReportRow(
                scenario=scenario.name,
                bit_pattern=scenario.bit_pattern,
                eye_height=metrics["eye_height"],
                eye_width=metrics["eye_width"],
                v_min=metrics["v_min"],
                v_max=metrics["v_max"],
            )
        )
    if not rows:
        raise ValueError(
            f"no completed scenarios to report on (failed: {failed})"
        )
    return SweepEyeReport(node=node, bit_time=bit_time, rows=rows, failed=failed)


def metric_distribution(values: Sequence[float], bins: int = 20) -> dict:
    """Statistical summary of one scalar metric across many scenarios.

    The JSON-safe building block of the Monte Carlo outputs: count /
    mean / std / min / max, the standard percentile ladder (p1 … p99,
    linear interpolation) and a fixed-width histogram over the observed
    range (``bins`` bins; a degenerate all-equal sample gets one bin
    holding everything).
    """
    if len(values) == 0:
        raise ValueError("metric_distribution needs at least one value")
    if bins < 2:
        raise ValueError(f"histogram needs at least 2 bins, got {bins}")
    arr = np.asarray(values, dtype=float)
    levels = np.percentile(arr, _PERCENTILES)
    lo, hi = float(arr.min()), float(arr.max())
    if hi > lo:
        counts, edges = np.histogram(arr, bins=bins, range=(lo, hi))
    else:
        counts, edges = np.array([arr.size]), np.array([lo, hi if hi > lo else lo + 1e-30])
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std()),
        "min": lo,
        "max": hi,
        "percentiles": {
            f"p{level}": float(value) for level, value in zip(_PERCENTILES, levels)
        },
        "histogram": {
            "edges": [float(e) for e in edges],
            "counts": [int(c) for c in counts],
        },
    }


def bathtub_curve(
    eyes: Sequence[EyeDiagram], low: float, high: float
) -> dict:
    """BER-style per-phase violation rates aggregated across many eyes.

    Every folded trace of every eye is classified HIGH or LOW by the mean
    of its central 20 % window (the same decision :meth:`EyeDiagram.eye_height`
    uses); at each phase sample a trace *violates* when it is on the
    wrong side of the logic midline or within the 5 %-of-swing guard band
    around it (the :meth:`EyeDiagram.eye_width` clearance).  The
    violation rate per phase across all traces is the bathtub: high at
    the unit-interval edges where edges transition, low (ideally zero)
    in the eye centre.

    All eyes must share one phase axis (they do when folded from one
    lockstep sweep); a mismatched axis raises instead of silently
    resampling.
    """
    if not eyes:
        raise ValueError("bathtub_curve needs at least one eye")
    first = eyes[0]
    mid = 0.5 * (low + high)
    guard = 0.05 * (high - low)
    centre = 0.5 * first.bit_time
    half_win = 0.1 * first.bit_time
    n_phase = first.phase.size
    violations = np.zeros(n_phase, dtype=np.int64)
    total = 0
    for eye in eyes:
        if eye.phase.size != n_phase or not np.allclose(eye.phase, first.phase):
            raise ValueError(
                "bathtub_curve needs a common phase axis across all eyes"
            )
        window = (eye.phase >= centre - half_win) & (eye.phase <= centre + half_win)
        is_high = eye.traces[:, window].mean(axis=1) >= mid
        # wrong side of the midline, or inside the guard band around it
        signed = np.where(is_high[:, None], eye.traces - mid, mid - eye.traces)
        violations += (signed < guard).sum(axis=0)
        total += eye.n_traces
    rate = violations / float(total)
    return {
        "phase": [float(p) for p in first.phase],
        "phase_fraction": [float(p / first.bit_time) for p in first.phase],
        "violation_rate": [float(r) for r in rate],
        "n_traces": int(total),
        "guard": float(guard),
        "open_fraction": float(np.mean(rate == 0.0)),
    }
