"""Batched scenario sweeps: many transients through one engine context.

The paper's macromodels pay off at scale — eye diagrams, corner analyses
and pattern sweeps run the same link hundreds of times with only the
stimulus or a few element values changed.  This package runs such batches
in lockstep so the engine work that does not change across scenarios is
done once:

* :mod:`repro.sweep.scenario` — scenario descriptions (patterns, corners,
  device variants) and their static-sharing keys;
* :mod:`repro.sweep.engine` — the lockstep batched runner (shared static
  MNA + LU, multi-RHS linear block solves, batched RBF evaluation);
* :mod:`repro.sweep.links` — canned linear and RBF link testbenches;
* :mod:`repro.sweep.result` — the :class:`SweepResult` container;
* :mod:`repro.sweep.report` — eye-diagram / worst-case-corner reports,
  plus the statistical summaries (distributions, bathtub curves);
* :mod:`repro.sweep.montecarlo` — seed-keyed Monte Carlo scenario
  sampling and adaptive worst-case refinement over the sharded engine.
"""

from repro.sweep.engine import CircuitSweep
from repro.sweep.links import (
    LinearLinkSpec,
    RBFLinkSpec,
    linear_link_sweep,
    rbf_link_sweep,
)
from repro.sweep.montecarlo import generate_scenarios, run_montecarlo
from repro.sweep.report import (
    SweepEyeReport,
    bathtub_curve,
    eye_report,
    metric_distribution,
)
from repro.sweep.result import SweepResult
from repro.sweep.scenario import Scenario

__all__ = [
    "CircuitSweep",
    "LinearLinkSpec",
    "RBFLinkSpec",
    "linear_link_sweep",
    "rbf_link_sweep",
    "SweepEyeReport",
    "eye_report",
    "metric_distribution",
    "bathtub_curve",
    "generate_scenarios",
    "run_montecarlo",
    "SweepResult",
    "Scenario",
]
