"""Element-bank layer: banked-vs-scalar equivalence and compaction (PR 5).

Pins the contracts of the vectorised element banks
(:mod:`repro.circuits.elements`) and the run-start bank compaction pass
(:mod:`repro.perf.mna`):

* banked and scalar netlists produce waveforms within 1e-12 relative on
  RC / RLC / ladder / mesh circuits, across both solver backends, for
  linear and nonlinear (RBF receiver) cases, with compaction forced on
  and off;
* the compaction pass groups homogeneous scalar elements without edits to
  the netlist, honours ``TransientOptions(compact_banks=False)`` and
  ``REPRO_BANK_COMPACTION=0``, and reports ``banked_elements`` /
  ``accept_calls`` through ``perf_stats``;
* the per-step accept list is built from the explicit ``needs_accept``
  flag (regression: the old bound-method comparison silently skipped
  accepts not defined directly on the leaf class);
* ladder-generator edge cases: ``segments=1``, zero-valued elements
  rejected with a clear error, and the golden ``sparse_ladder.json`` job
  reporting ``banked_elements > 0`` in its CLI artifact.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.circuits.elements import (
    Capacitor,
    CapacitorBank,
    CurrentSource,
    CurrentSourceBank,
    Element,
    Inductor,
    InductorBank,
    Resistor,
    ResistorBank,
    VoltageSource,
    VoltageSourceBank,
)
from repro.circuits.ladder import (
    add_lc_ladder,
    rc_grid_circuit,
    rc_ladder_circuit,
)
from repro.circuits.netlist import GROUND, Circuit
from repro.circuits.transient import TransientOptions, TransientSolver
from repro.perf.mna import (
    FastPathAssembler,
    bank_compaction_default,
    compact_elements,
)
from repro.waveforms.signals import BitPattern

REL_TOL = 1e-12

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN_JOB = os.path.join(REPO_ROOT, "examples", "jobs", "sparse_ladder.json")


def _stimulus():
    return BitPattern(pattern="0110", bit_time=1e-9, low=0.0, high=1.8, edge_time=1e-10)


def _rel_err(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.max(np.abs(a - b))) / max(float(np.max(np.abs(b))), 1e-30)


def _run(circuit_factory, probe, backend=None, fast=None, compact=None,
         duration=1.2e-9, dt=1e-11, record_branches=[]):
    solver = TransientSolver(
        circuit_factory(), dt,
        options=TransientOptions(fast=fast, backend=backend, compact_banks=compact),
    )
    result = solver.run(duration, record_nodes=[probe] if probe else None,
                        record_branches=record_branches)
    return result, solver.perf_stats


# -- circuit families --------------------------------------------------------

def _rc_ladder(banked):
    return lambda: rc_ladder_circuit(40, waveform=_stimulus(), banked=banked)[0]


def _mesh(banked):
    return lambda: rc_grid_circuit(6, 6, waveform=_stimulus(), banked=banked)[0]


def _rlc_link(banked):
    """A driven LC-ladder link: series R source, 25-section line, RC load."""

    def build():
        circuit = Circuit("rlc-link")
        circuit.add(VoltageSource("vin", "in", GROUND, _stimulus()))
        circuit.add(Resistor("rs", "in", "near", 50.0))
        add_lc_ladder(circuit, "tl", "near", "far", 131.0, 0.4e-9, 25,
                      banked=banked)
        circuit.add(Resistor("rload", "far", GROUND, 500.0))
        circuit.add(Capacitor("cload", "far", GROUND, 1e-12))
        return circuit

    return build


#: builder, probe node, duration long enough for the probe to see the edge
FAMILIES = {
    "rc-ladder": (_rc_ladder, "n20", 1.2e-9),
    "mesh": (_mesh, "g1_1", 1.2e-9),
    "rlc-link": (_rlc_link, "far", 2.5e-9),
}


class TestBankedVsScalarWaveforms:
    """Differential suite: banked == scalar to <= 1e-12 everywhere."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("compact", [False, True])
    def test_linear_families(self, family, backend, compact):
        builders, probe, duration = FAMILIES[family]
        ref, _ = _run(builders(False), probe, fast=False, duration=duration)
        ref = ref.voltage(probe)
        assert np.max(np.abs(ref)) > 0.1  # the probe actually sees the signal
        # native banks, and the compaction pass over the scalar netlist
        banked, banked_stats = _run(builders(True), probe, backend=backend,
                                    compact=compact, duration=duration)
        scalar, scalar_stats = _run(builders(False), probe, backend=backend,
                                    compact=compact, duration=duration)
        assert _rel_err(banked.voltage(probe), ref) <= REL_TOL
        assert _rel_err(scalar.voltage(probe), ref) <= REL_TOL
        assert banked_stats["backend"] == backend
        assert banked_stats["banked_elements"] > 0
        if compact:
            # compaction re-banks the scalar netlist without edits
            assert scalar_stats["banked_elements"] > 0
            assert scalar_stats["compacted_elements"] > 0

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_integration_methods_match(self, backend):
        builders, probe, _ = FAMILIES["rlc-link"]
        for method in ("trapezoidal", "backward_euler"):
            opts_ref = TransientOptions(fast=False, method=method)
            ref = TransientSolver(builders(False)(), 1e-11, opts_ref).run(
                2.5e-9, record_nodes=[probe], record_branches=[]
            ).voltage(probe)
            opts = TransientOptions(backend=backend, method=method)
            wave = TransientSolver(builders(True)(), 1e-11, opts).run(
                2.5e-9, record_nodes=[probe], record_branches=[]
            ).voltage(probe)
            assert np.max(np.abs(ref)) > 0.1
            assert _rel_err(wave, ref) <= REL_TOL

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("compact", [False, True])
    def test_nonlinear_rbf_receiver(self, backend, compact, driver_model,
                                    receiver_model):
        from repro.circuits.rbf_element import MacromodelElement
        from repro.macromodel.driver import LogicStimulus

        dt = 1e-11

        def build(banked):
            def factory():
                stimulus = LogicStimulus.from_pattern("010", 2e-9)
                circuit = Circuit("rbf-ladder")
                circuit.add(MacromodelElement(
                    "drv", "near", GROUND, driver_model.bound(stimulus), dt
                ))
                add_lc_ladder(circuit, "tl", "near", "far", 131.0, 0.4e-9, 20,
                              banked=banked)
                circuit.add(Resistor("rload", "far", GROUND, 500.0))
                circuit.add(Capacitor("cload", "far", GROUND, 1e-12))
                circuit.add(MacromodelElement("rx", "far", GROUND, receiver_model, dt))
                return circuit
            return factory

        ref, _ = _run(build(False), "far", fast=False, duration=3e-9, dt=dt)
        ref = ref.voltage("far")
        banked, stats = _run(build(True), "far", backend=backend, compact=compact,
                             duration=3e-9, dt=dt)
        assert np.max(np.abs(ref)) > 0.5
        assert _rel_err(banked.voltage("far"), ref) <= REL_TOL
        assert stats["linear_only"] is False
        assert stats["banked_elements"] >= 40  # 20 L + 20 C in banks


class TestBankStamps:
    """Unit-level bank contracts: matrices, branch currents, validation."""

    def _assemble(self, circuit, backend="dense", dt=1e-11):
        compiled = circuit.compile()
        asm = FastPathAssembler(circuit, compiled, dt, "trapezoidal", 1e-12,
                                backend=backend, compact_banks=False)
        asm.begin_run()
        ctx = asm.begin_step(dt)
        A, rhs = asm.iterate(np.zeros(compiled.n_unknowns), ctx)
        A = A if isinstance(A, np.ndarray) else A.toarray()
        return np.asarray(A), np.asarray(rhs)

    def test_resistor_bank_assembles_identical_matrix(self):
        def build(banked):
            circuit = Circuit("rdiv")
            circuit.add(VoltageSource("vin", "in", GROUND, 1.0))
            if banked:
                circuit.add(ResistorBank(
                    "rbank", ["in", "mid", "mid"], ["mid", "out", GROUND],
                    [100.0, 200.0, 300.0],
                ))
            else:
                circuit.add(Resistor("r0", "in", "mid", 100.0))
                circuit.add(Resistor("r1", "mid", "out", 200.0))
                circuit.add(Resistor("r2", "mid", GROUND, 300.0))
            circuit.add(Resistor("rload", "out", GROUND, 500.0))
            return circuit

        A_scalar, rhs_scalar = self._assemble(build(False))
        A_banked, rhs_banked = self._assemble(build(True))
        np.testing.assert_allclose(A_banked, A_scalar, rtol=0, atol=1e-15)
        np.testing.assert_allclose(rhs_banked, rhs_scalar, rtol=0, atol=1e-15)

    def test_sparse_bank_matrix_matches_dense(self):
        circuit, _ = rc_ladder_circuit(12, waveform=_stimulus())
        A_dense, rhs_dense = self._assemble(circuit, backend="dense")
        circuit, _ = rc_ladder_circuit(12, waveform=_stimulus())
        A_sparse, rhs_sparse = self._assemble(circuit, backend="sparse")
        np.testing.assert_allclose(A_sparse, A_dense, rtol=0, atol=1e-15)
        np.testing.assert_allclose(rhs_sparse, rhs_dense, rtol=0, atol=1e-15)

    def test_inductor_bank_branch_currents_match_scalar(self):
        def build(banked):
            def factory():
                circuit = Circuit("ll")
                circuit.add(VoltageSource("vin", "in", GROUND, _stimulus()))
                circuit.add(Resistor("rs", "in", "a", 50.0))
                if banked:
                    circuit.add(InductorBank("lbank", ["a", "b"], ["b", "out"],
                                             [1e-9, 2e-9]))
                else:
                    circuit.add(Inductor("l0", "a", "b", 1e-9))
                    circuit.add(Inductor("l1", "b", "out", 2e-9))
                circuit.add(Resistor("rload", "out", GROUND, 75.0))
                return circuit
            return factory

        scalar, _ = _run(build(False), "out",
                         record_branches=[("l0", 0), ("l1", 0)])
        banked, _ = _run(build(True), "out",
                         record_branches=[("lbank", 0), ("lbank", 1)])
        assert np.max(np.abs(scalar.branch_current("l0"))) > 0
        for scalar_key, bank_k in (("l0", 0), ("l1", 1)):
            err = _rel_err(banked.branch_current("lbank", bank_k),
                           scalar.branch_current(scalar_key))
            assert err <= REL_TOL

    def test_source_banks_mixed_constant_and_callable(self):
        wave = _stimulus()

        def build(banked):
            def factory():
                circuit = Circuit("sources")
                if banked:
                    circuit.add(VoltageSourceBank(
                        "vbank", ["a", "b"], [GROUND, GROUND], [wave, 1.8]
                    ))
                    circuit.add(CurrentSourceBank(
                        "ibank", ["c", GROUND], [GROUND, "c"], [1e-3, wave]
                    ))
                else:
                    circuit.add(VoltageSource("v0", "a", GROUND, wave))
                    circuit.add(VoltageSource("v1", "b", GROUND, 1.8))
                    circuit.add(CurrentSource("i0", "c", GROUND, 1e-3))
                    circuit.add(CurrentSource("i1", GROUND, "c", wave))
                for node, r in (("a", 100.0), ("b", 200.0), ("c", 300.0)):
                    circuit.add(Resistor(f"r_{node}", node, GROUND, r))
                circuit.add(Capacitor("cc", "c", GROUND, 1e-12))
                return circuit
            return factory

        scalar, _ = _run(build(False), None, fast=False)
        for backend in ("dense", "sparse"):
            banked, _ = _run(build(True), None, backend=backend)
            for node in ("a", "b", "c"):
                err = _rel_err(banked.voltage(node), scalar.voltage(node))
                assert err <= REL_TOL

    def test_shared_callable_evaluated_once_per_step(self):
        calls = {"n": 0}

        def wave(t):
            calls["n"] += 1
            return 1.0

        bank = VoltageSourceBank("vb", ["a", "b", "c"],
                                 [GROUND, GROUND, GROUND], wave)
        values = bank.values(0.5)
        assert calls["n"] == 1
        np.testing.assert_allclose(values, [1.0, 1.0, 1.0])

    def test_branch_names_banks_claim_no_extra_unknowns(self):
        # A bank addressing existing scalar branch rows via branch_names
        # must not allocate a block of its own (the rows would stay
        # unstamped and make the system singular).
        lb = InductorBank("lb", ["a"], ["b"], 1e-9, branch_names=["l0"])
        assert lb.n_branch_currents == 0
        vb = VoltageSourceBank("vb", ["a"], [GROUND], [1.0], branch_names=["v0"])
        assert vb.n_branch_currents == 0
        # native banks keep one branch unknown per member
        assert InductorBank("lb2", ["a"], ["b"], 1e-9).n_branch_currents == 1
        assert VoltageSourceBank("vb2", ["a"], [GROUND], [1.0]).n_branch_currents == 1

    def test_impure_shared_waveform_matches_scalar_under_compaction(self):
        # Two scalar sources sharing one impure callable: the scalar fast
        # path calls it once per source per step (stamp_rhs), and the
        # compaction bridge must preserve exactly that call pattern
        # (share_waveforms=False), not fold the calls into one per step.
        def make_factory(calls):
            counter = iter(range(10_000))

            def wave(t):
                calls.append(t)
                return 1.0 + 0.1 * (next(counter) % 2)

            def factory():
                circuit = Circuit("impure")
                circuit.add(VoltageSource("v0", "a", GROUND, wave))
                circuit.add(VoltageSource("v1", "b", GROUND, wave))
                circuit.add(Resistor("ra", "a", GROUND, 100.0))
                circuit.add(Resistor("rb", "b", GROUND, 100.0))
                return circuit
            return factory

        scalar_calls, banked_calls = [], []
        scalar, _ = _run(make_factory(scalar_calls), None, backend="dense",
                         compact=False, duration=1e-10)
        banked, stats = _run(make_factory(banked_calls), None, backend="dense",
                             compact=True, duration=1e-10)
        assert stats["compacted_elements"] == 4  # both sources did compact
        assert len(scalar_calls) == 20  # 10 steps x 2 sources
        assert len(banked_calls) == len(scalar_calls)
        for node in ("a", "b"):
            assert _rel_err(banked.voltage(node), scalar.voltage(node)) <= REL_TOL

    def test_bank_validation_errors(self):
        with pytest.raises(ValueError, match="same length"):
            ResistorBank("r", ["a", "b"], ["c"], 1.0)
        with pytest.raises(ValueError, match="at least one"):
            ResistorBank("r", [], [], 1.0)
        with pytest.raises(ValueError, match="resistance must be positive"):
            ResistorBank("r", ["a"], [GROUND], 0.0)
        with pytest.raises(ValueError, match="inductance must be positive"):
            InductorBank("l", ["a"], [GROUND], [0.0])
        with pytest.raises(ValueError, match="capacitance must be non-negative"):
            CapacitorBank("c", ["a"], -1e-12)
        with pytest.raises(ValueError, match="one value per bank member"):
            CapacitorBank("c", ["a", "b"], [1e-12, 2e-12, 3e-12])
        with pytest.raises(ValueError, match="one per bank member"):
            VoltageSourceBank("v", ["a", "b"], [GROUND, GROUND], [1.0])
        with pytest.raises(ValueError, match="one branch per element"):
            InductorBank("l", ["a"], [GROUND], 1e-9, branch_names=["x", "y"])


class TestCompactionPass:
    def test_groups_and_counters(self):
        factory = _rc_ladder(False)
        result, stats = _run(factory, "n20", backend="dense", compact=True)
        n_steps = result.times.size - 1
        # 40 R + 1 rload + 40 C compacted into two banks; vin stays scalar
        # (group of one).
        assert stats["bank_compaction"] is True
        assert stats["compacted_elements"] == 81
        assert stats["banked_elements"] == 81
        # one accept call per step: only the capacitor bank carries state
        assert stats["accept_calls"] == n_steps

    def test_option_opt_out(self):
        _, stats = _run(_rc_ladder(False), "n20", backend="dense", compact=False)
        assert stats["bank_compaction"] is False
        assert stats["compacted_elements"] == 0
        assert stats["banked_elements"] == 0

    def test_env_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_BANK_COMPACTION", "0")
        assert bank_compaction_default() is False
        _, stats = _run(_rc_ladder(False), "n20", backend="dense")
        assert stats["bank_compaction"] is False
        assert stats["banked_elements"] == 0
        monkeypatch.setenv("REPRO_BANK_COMPACTION", "1")
        assert bank_compaction_default() is True

    def test_subclasses_pass_through_uncompacted(self):
        class SenseResistor(Resistor):
            """A subclass with extra behaviour must never be absorbed."""

        elements = [SenseResistor(f"r{k}", f"n{k}", GROUND, 1.0) for k in range(5)]
        out, compacted = compact_elements(elements)
        assert compacted == 0
        assert out == elements

    def test_instance_customised_element_passes_through(self):
        # A stock element with an instance-installed behaviour hook must
        # never be absorbed into a bank (the bank would silently drop the
        # override) — but its uncustomised siblings still compact.
        calls = []
        probe = Resistor("rp", "a", GROUND, 100.0)
        probe.needs_accept = True
        probe.accept = lambda x, ctx: calls.append(float(ctx.t))

        circuit = Circuit("probe-compaction")
        circuit.add(VoltageSource("vin", "a", GROUND, 1.0))
        circuit.add(probe)
        circuit.add(Resistor("r1", "a", "b", 50.0))
        circuit.add(Resistor("r2", "b", GROUND, 50.0))
        solver = TransientSolver(
            circuit, 1e-11, TransientOptions(compact_banks=True)
        )
        solver.run(1e-10, record_branches=[])
        assert len(calls) == 10  # the probe's accept ran despite compaction
        assert solver.perf_stats["compacted_elements"] == 2  # r1 + r2 only

    def test_instance_value_override_passes_through(self):
        # ``value`` is the hook the source stamps call per step; an
        # instance override must keep the source out of any bank.
        def factory():
            circuit = Circuit("value-override")
            custom = VoltageSource("v0", "a", GROUND, 1.0)
            custom.value = lambda t: 2.0
            circuit.add(custom)
            circuit.add(VoltageSource("v1", "b", GROUND, 1.0))
            circuit.add(Resistor("ra", "a", "c", 100.0))
            circuit.add(Resistor("rb", "b", "c", 100.0))
            circuit.add(Resistor("rc", "c", GROUND, 100.0))
            return circuit

        ref, _ = _run(factory, "c", fast=False, duration=1e-10)
        compacted, stats = _run(factory, "c", backend="dense", compact=True,
                                duration=1e-10)
        assert _rel_err(compacted.voltage("c"), ref.voltage("c")) <= REL_TOL
        assert stats["compacted_elements"] == 3  # resistors only; v0 + v1 scalar

    def test_small_groups_stay_scalar(self):
        elements = [
            Resistor("r0", "a", GROUND, 1.0),
            Capacitor("c0", "a", GROUND, 1e-12),
        ]
        out, compacted = compact_elements(elements)
        assert compacted == 0
        assert out == elements

    def test_compacted_voltage_source_branch_current_preserved(self):
        # The compacted bank stamps into the scalar sources' existing
        # branch rows, so recorded branch currents keep their names.
        def factory():
            circuit = Circuit("two-sources")
            circuit.add(VoltageSource("v0", "a", GROUND, _stimulus()))
            circuit.add(VoltageSource("v1", "b", GROUND, 0.9))
            circuit.add(Resistor("ra", "a", GROUND, 100.0))
            circuit.add(Resistor("rb", "b", GROUND, 200.0))
            return circuit

        ref, _ = _run(factory, None, fast=False,
                      record_branches=[("v0", 0), ("v1", 0)])
        banked, stats = _run(factory, None, backend="dense", compact=True,
                             record_branches=[("v0", 0), ("v1", 0)])
        assert stats["compacted_elements"] == 4
        for name in ("v0", "v1"):
            assert _rel_err(banked.branch_current(name),
                            ref.branch_current(name)) <= REL_TOL


class TestNeedsAcceptFlag:
    """Regression: the accept list is flag-built, not bound-method-compared."""

    def test_instance_assigned_accept_is_not_skipped(self):
        # The old detection (``type(el).accept is not Element.accept``)
        # missed accepts installed on the *instance* — the class attribute
        # is still the base hook, so the element was silently skipped.
        calls = []

        class Probe(Resistor):
            pass

        probe = Probe("rp", "a", GROUND, 100.0)
        probe.needs_accept = True
        probe.accept = lambda x, ctx: calls.append(float(ctx.t))

        circuit = Circuit("probe")
        circuit.add(VoltageSource("vin", "a", GROUND, 1.0))
        circuit.add(probe)
        solver = TransientSolver(circuit, 1e-11)
        solver.run(1e-10, record_branches=[])
        assert len(calls) == 10
        # the fast path reports its accept bookkeeping
        assert solver.perf_stats["accept_calls"] >= 10

    def test_intermediate_class_accept_runs(self):
        class Intermediate(Element):
            stamp_kind = "static"
            needs_accept = True

            def __init__(self, name):
                super().__init__(name, ("a",))
                self.accepted = 0

            def stamp_static(self, A, ctx):
                pass

            def stamp_rhs(self, rhs, ctx):
                pass

            def stamp(self, A, rhs, x, ctx):
                pass

            def accept(self, x, ctx):
                self.accepted += 1

        class Leaf(Intermediate):
            """Inherits accept from the intermediate class untouched."""

        leaf = Leaf("leaf")
        circuit = Circuit("inherit")
        circuit.add(VoltageSource("vin", "a", GROUND, 1.0))
        circuit.add(Resistor("r", "a", GROUND, 100.0))
        circuit.add(leaf)
        for fast in (False, True):
            leaf.accepted = 0
            TransientSolver(
                circuit, 1e-11, TransientOptions(fast=fast)
            ).run(1e-10, record_branches=[])
            assert leaf.accepted == 10

    def test_stateless_elements_take_no_accept_call(self):
        circuit = Circuit("stateless")
        circuit.add(VoltageSource("vin", "a", GROUND, 1.0))
        circuit.add(Resistor("r", "a", GROUND, 100.0))
        solver = TransientSolver(circuit, 1e-11)
        run = solver.begin(1e-10, record_branches=[])
        assert run.accept_elements == []

    def test_future_subclass_accept_is_auto_flagged(self):
        # Safety net: overriding accept() without declaring needs_accept
        # must not reintroduce a silent skip (Element.__init_subclass__
        # infers the flag; an explicit declaration still wins).
        class Memristor(Element):
            def accept(self, x, ctx):
                pass

        assert Memristor.needs_accept is True

        class ExplicitlyStateless(Element):
            needs_accept = False

            def accept(self, x, ctx):
                pass

        assert ExplicitlyStateless.needs_accept is False

        class StatefulMixin:
            def accept(self, x, ctx):
                pass

        class MixedIn(StatefulMixin, Element):
            """accept() arrives through a non-Element mixin."""

        assert MixedIn.needs_accept is True

        # an inherited explicit opt-out governs plain subclasses...
        class StatelessChild(ExplicitlyStateless):
            pass

        assert StatelessChild.needs_accept is False

        # ...until a subclass introduces a fresh accept of its own
        class Reinstated(ExplicitlyStateless):
            def accept(self, x, ctx):
                pass

        assert Reinstated.needs_accept is True

    def test_stock_element_flags(self):
        assert Resistor("r", "a", "b", 1.0).needs_accept is False
        assert VoltageSource("v", "a", "b", 1.0).needs_accept is False
        assert CurrentSource("i", "a", "b", 1.0).needs_accept is False
        assert Capacitor("c", "a", "b", 1e-12).needs_accept is True
        assert Inductor("l", "a", "b", 1e-9).needs_accept is True
        assert CapacitorBank("cb", ["a"], 1e-12).needs_accept is True
        assert InductorBank("lb", ["a"], ["b"], 1e-9).needs_accept is True
        assert ResistorBank("rb", ["a"], ["b"], 1.0).needs_accept is False


class TestLadderGeneratorEdgeCases:
    def test_single_segment_ladder(self):
        circuit = Circuit("one-segment")
        circuit.add(VoltageSource("vin", "in", GROUND, _stimulus()))
        circuit.add(Resistor("rs", "in", "near", 50.0))
        add_lc_ladder(circuit, "tl", "near", "far", 131.0, 0.4e-9, 1)
        circuit.add(Resistor("rload", "far", GROUND, 500.0))
        assert len(circuit.element("tl_l")) == 1
        assert len(circuit.element("tl_c")) == 1
        result = TransientSolver(circuit, 1e-11).run(1e-9, record_branches=[])
        assert np.all(np.isfinite(result.voltage("far")))

    def test_zero_valued_elements_rejected(self):
        with pytest.raises(ValueError, match="z0 and delay must be positive"):
            add_lc_ladder(Circuit("x"), "tl", "a", "b", 0.0, 1e-9, 4)
        with pytest.raises(ValueError, match="segments must be at least 1"):
            add_lc_ladder(Circuit("x"), "tl", "a", "b", 50.0, 1e-9, 0)
        with pytest.raises(ValueError, match="r_section and r_load"):
            rc_ladder_circuit(4, r_section=0.0)
        with pytest.raises(ValueError, match="c_section must be positive"):
            rc_ladder_circuit(4, c_section=0.0)
        with pytest.raises(ValueError, match="n_sections must be at least 1"):
            rc_ladder_circuit(0)
        with pytest.raises(ValueError, match="r_link and r_load"):
            rc_grid_circuit(3, 3, r_link=-1.0)
        with pytest.raises(ValueError, match="c_node must be positive"):
            rc_grid_circuit(3, 3, c_node=0.0)
        with pytest.raises(ValueError, match="at least 2x2"):
            rc_grid_circuit(1, 5)

    def test_golden_sparse_ladder_job_reports_banks(self, tmp_path):
        from repro.api.cli import main

        out = tmp_path / "sparse_ladder.result.json"
        assert main(["run", GOLDEN_JOB, "--quick", "--output", str(out)]) == 0
        with open(out, "r", encoding="utf-8") as handle:
            artifact = json.load(handle)
        stats = artifact["perf_stats"]
        assert stats["backend"] == "sparse"
        assert stats["banked_elements"] > 0  # the 240-section LC ladder banks
        assert stats["accept_calls"] > 0
        # banked accepts: per step one L bank + one C bank + load cap +
        # two macromodels — far fewer calls than elements x steps
        n_steps = artifact["n_samples"] - 1
        assert stats["accept_calls"] <= 6 * n_steps
