"""Tests for the resampling operator (Eq. 13) and its stability (Fig. 2)."""

import numpy as np
import pytest

from repro.core.resampling import (
    ResampledPortModel,
    continuous_eigenvalue,
    resampled_eigenvalue,
    resampling_matrix,
)
from repro.core.stability import (
    figure2_data,
    is_resampling_stable,
    resampled_stability_region,
    simulate_scalar_test_problem,
    unit_disc_samples,
)
from repro.macromodel.driver import LogicStimulus


class TestResamplingMatrix:
    def test_structure(self):
        q = resampling_matrix(4, 0.3)
        np.testing.assert_allclose(np.diag(q), 0.7)
        np.testing.assert_allclose(np.diag(q, -1), 0.3)
        assert np.count_nonzero(q) == 4 + 3

    def test_tau_one_is_pure_shift(self):
        q = resampling_matrix(3, 1.0)
        expected = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)
        np.testing.assert_allclose(q, expected)

    def test_row_sums(self):
        q = resampling_matrix(5, 0.4)
        sums = q.sum(axis=1)
        assert sums[0] == pytest.approx(0.6)
        np.testing.assert_allclose(sums[1:], 1.0)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            resampling_matrix(0, 0.5)


class TestEigenvalueMaps:
    def test_continuous_map(self):
        eta = continuous_eigenvalue(0.5, 25e-12)
        assert eta == pytest.approx(-0.5 / 25e-12)

    def test_resampled_map_matches_eq16(self):
        lam = 0.3 + 0.4j
        tau = 0.7
        assert resampled_eigenvalue(lam, tau) == pytest.approx(1 + tau * (lam - 1))

    def test_unit_disc_maps_into_stability_circle(self):
        tau = 0.6
        for lam in unit_disc_samples(6, 12):
            lt = resampled_eigenvalue(lam, tau)
            assert abs(lt - (1 - tau)) <= tau + 1e-12

    def test_stability_criterion(self):
        assert is_resampling_stable(0.2)
        assert is_resampling_stable(1.0)
        assert not is_resampling_stable(1.2)
        with pytest.raises(ValueError):
            is_resampling_stable(0.0)

    def test_region_properties(self):
        region = resampled_stability_region(0.5, 25e-12)
        assert region.circle_center == pytest.approx(0.5)
        assert region.circle_radius == pytest.approx(0.5)
        assert region.all_resampled_stable
        assert np.all(np.abs(region.discrete) < 1.0)
        assert np.all(np.real(region.continuous) < 0.0)

    def test_unstable_region_detected(self):
        region = resampled_stability_region(1.4)
        assert not region.all_resampled_stable

    def test_figure2_data_keys(self):
        data = figure2_data((0.25, 1.0))
        assert set(data) == {0.25, 1.0}

    def test_scalar_marching_stable_and_unstable(self):
        stable = simulate_scalar_test_problem(-0.9, 0.9, n_steps=300)
        unstable = simulate_scalar_test_problem(-0.9, 1.5, n_steps=300)
        assert stable[-1] <= 1.0 + 1e-9
        assert unstable[-1] > 10.0


class TestResampledPortModel:
    def test_rejects_unstable_tau(self, driver_model):
        ts = driver_model.sampling_time
        with pytest.raises(ValueError):
            ResampledPortModel(driver_model, 2.0 * ts)

    def test_allow_unstable_override(self, driver_model):
        ts = driver_model.sampling_time
        port = ResampledPortModel(driver_model, 2.0 * ts, allow_unstable=True)
        assert port.tau == pytest.approx(2.0)

    def test_commit_advances_time(self, driver_model):
        bound = driver_model.bound(LogicStimulus.from_pattern("0", 2e-9))
        port = ResampledPortModel(bound, 5e-12, v0=0.0)
        assert port.time == 0.0
        port.commit(0.1)
        assert port.time == pytest.approx(5e-12)

    def test_state_update_matches_eq13(self, receiver_model):
        dt = 5e-12
        port = ResampledPortModel(receiver_model, dt, v0=0.0, i0=0.0)
        tau = port.tau
        q = resampling_matrix(receiver_model.dynamic_order, tau)
        x_v_before = port.x_v.copy()
        x_i_before = port.x_i.copy()
        v = 0.8
        i_now = receiver_model.current(v, x_v_before, x_i_before, 0.0)
        port.commit(v)
        expected_xv = q @ x_v_before
        expected_xv[0] += tau * v
        expected_xi = q @ x_i_before
        expected_xi[0] += tau * i_now
        np.testing.assert_allclose(port.x_v, expected_xv)
        np.testing.assert_allclose(port.x_i, expected_xi)
        assert port.last_current == pytest.approx(i_now)

    def test_tau_one_reduces_to_native_stepping(self, receiver_model):
        """At dt = Ts the resampled update is the plain shift register."""
        ts = receiver_model.sampling_time
        port = ResampledPortModel(receiver_model, ts, v0=0.2, i0=0.0)
        voltages = [0.3, 0.5, 0.9, 1.4]
        x_v = np.full(receiver_model.dynamic_order, 0.2)
        x_i = np.zeros(receiver_model.dynamic_order)
        for k, v in enumerate(voltages):
            i_ref = receiver_model.current(v, x_v, x_i, k * ts)
            i_port = port.commit(v)
            assert i_port == pytest.approx(i_ref)
            x_v = np.concatenate(([v], x_v[:-1]))
            x_i = np.concatenate(([i_ref], x_i[:-1]))

    def test_reset_restores_initial_state(self, receiver_model):
        port = ResampledPortModel(receiver_model, 5e-12, v0=1.0, i0=0.1)
        port.commit(0.4)
        port.reset(v0=1.0, i0=0.1)
        np.testing.assert_allclose(port.x_v, 1.0)
        np.testing.assert_allclose(port.x_i, 0.1)
        assert port.time == 0.0

    def test_copy_is_independent(self, receiver_model):
        port = ResampledPortModel(receiver_model, 5e-12)
        clone = port.copy()
        port.commit(0.9)
        assert clone.time == 0.0
        assert not np.allclose(clone.x_v, port.x_v)

    def test_resampled_receiver_tracks_capacitive_current(self, receiver_model, params):
        """A linear ramp applied through the resampled model must produce
        approximately the C dV/dt current of the receiver input capacitance."""
        dt = 2e-12
        port = ResampledPortModel(receiver_model, dt, v0=0.0)
        slope = 1.0e9  # 1 V/ns
        i_samples = []
        for n in range(400):
            v = slope * n * dt
            i_samples.append(port.commit(v))
        expected = params.c_in * slope
        assert np.mean(i_samples[200:]) == pytest.approx(expected, rel=0.2)
