"""Tests of the 1-D and 3-D FDTD solvers and the lumped-element coupling."""

import numpy as np
import pytest

from repro.core.ports import (
    MacromodelTermination,
    ParallelRCTermination,
    ResistorTermination,
    ResistiveSourceTermination,
)
from repro.fdtd.courant import courant_time_step
from repro.fdtd.constants import C0
from repro.fdtd.grid import YeeGrid
from repro.fdtd.lumped import FlippedTermination, LumpedElementSite
from repro.fdtd.probes import EdgeVoltageProbe, FieldProbe
from repro.fdtd.solver1d import FDTD1DLine
from repro.fdtd.solver3d import FDTD3DSolver
from repro.macromodel.driver import LogicStimulus
from repro.structures.validation_line import ValidationLineStructure, estimate_line_parameters
from repro.waveforms.analysis import crossing_times
from repro.waveforms.signals import GaussianPulse, StepWaveform


class TestFDTD1D:
    def _step_source(self):
        return StepWaveform(low=0.0, high=1.0, t_start=0.1e-9, rise_time=0.05e-9)

    def test_matched_line_levels_and_delay(self):
        z0, td = 131.0, 0.4e-9
        line = FDTD1DLine(
            z0, td,
            ResistiveSourceTermination(z0, self._step_source()),
            ResistorTermination(z0),
            n_cells=80,
        )
        res = line.run(2e-9)
        assert res.voltage("near_end")[-1] == pytest.approx(0.5, abs=0.01)
        assert res.voltage("far_end")[-1] == pytest.approx(0.5, abs=0.01)
        t_near = crossing_times(res.times, res.voltage("near_end"), 0.25)[0]
        t_far = crossing_times(res.times, res.voltage("far_end"), 0.25)[0]
        assert (t_far - t_near) == pytest.approx(td, abs=0.02 * td)

    def test_open_and_short_reflections(self):
        z0, td = 100.0, 0.2e-9
        open_line = FDTD1DLine(
            z0, td, ResistiveSourceTermination(z0, self._step_source()), ResistorTermination(1e9), n_cells=60
        )
        res_open = open_line.run(1.5e-9)
        assert np.max(res_open.voltage("far_end")) == pytest.approx(1.0, abs=0.02)
        short_line = FDTD1DLine(
            z0, td, ResistiveSourceTermination(z0, self._step_source()), ResistorTermination(1e-3), n_cells=60
        )
        res_short = short_line.run(1.5e-9)
        assert abs(res_short.voltage("far_end")[-1]) < 0.01

    def test_rc_load_settles_to_divider(self):
        z0, td = 131.0, 0.4e-9
        r_load = 500.0
        line = FDTD1DLine(
            z0, td,
            ResistiveSourceTermination(z0, self._step_source()),
            ParallelRCTermination(r_load, 1e-12, td / 100),
            n_cells=100,
        )
        res = line.run(6e-9)
        expected = r_load / (r_load + z0)
        assert res.voltage("far_end")[-1] == pytest.approx(expected, abs=0.02)

    def test_macromodel_driver_reaches_rail(self, driver_model):
        z0, td = 131.0, 0.4e-9
        dt = td / 100
        bound = driver_model.bound(LogicStimulus.from_pattern("01", 2e-9))
        line = FDTD1DLine(
            z0, td,
            MacromodelTermination.from_model(bound, dt),
            ParallelRCTermination(500.0, 1e-12, dt),
            n_cells=100,
        )
        res = line.run(5e-9)
        # after the up transition at 2 ns everything settles near the supply
        assert res.voltage("near_end")[-1] == pytest.approx(1.8, abs=0.15)
        assert res.voltage("far_end")[-1] == pytest.approx(1.8, abs=0.15)
        assert res.newton_stats.max_iterations <= 5
        assert res.newton_stats.failures == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FDTD1DLine(0.0, 1e-9, ResistorTermination(50.0), ResistorTermination(50.0))
        with pytest.raises(ValueError):
            FDTD1DLine(50.0, 1e-9, ResistorTermination(50.0), ResistorTermination(50.0), n_cells=2)
        line = FDTD1DLine(50.0, 1e-9, ResistorTermination(50.0), ResistorTermination(50.0))
        with pytest.raises(ValueError):
            line.run(0.0)


def _small_line_structure():
    return ValidationLineStructure(
        strip_length_cells=24, margin_x=6, margin_y=6, margin_z=6
    )


@pytest.mark.slow
class TestFDTD3D:
    def test_solver_rejects_super_courant_dt(self):
        grid = YeeGrid(8, 8, 8, 1e-3)
        with pytest.raises(ValueError):
            FDTD3DSolver(grid, dt=1e-11)

    def test_free_space_pulse_stays_bounded(self):
        grid = YeeGrid(20, 12, 12, 1e-3)
        solver = FDTD3DSolver(grid)
        src = ResistiveSourceTermination(100.0, GaussianPulse(amplitude=1.0, t_center=30e-12, sigma=8e-12))
        solver.add_lumped_element(LumpedElementSite("src", "z", (10, 6, 6), src))
        solver.run(n_steps=400)
        assert np.isfinite(solver.total_field_energy())
        # absorbing boundaries drain the energy once the pulse has left
        assert solver.total_field_energy() < 1e-12

    def test_lumped_resistor_voltage_divider_on_line(self):
        """Launch a step down the stacked-strip line into a matched far end:
        the near-end voltage equals the source divided between Rs and Zc."""
        structure = _small_line_structure()
        step = StepWaveform(high=1.0, t_start=20e-12, rise_time=20e-12)
        solver, near, far = structure.build_solver(
            ResistiveSourceTermination(137.0, step), ResistorTermination(137.0)
        )
        solver.run(duration=0.35e-9)
        # during the flight the near end sits near 0.5 V (Zc ~ 137 ohm)
        assert near.voltages[-1] == pytest.approx(0.5, abs=0.08)
        assert np.isfinite(far.voltages).all()

    def test_effective_line_parameters_match_paper(self):
        z_c, t_d = estimate_line_parameters(ValidationLineStructure.scaled(0.25))
        # the paper quotes ~131 ohm; the discretised line lands within ~10%
        assert z_c == pytest.approx(131.0, rel=0.10)
        # delay consistent with the (scaled) physical length; on a short line
        # the half-amplitude measurement carries a few tens of picoseconds of
        # rise-time bias, hence the loose tolerance
        nominal = 40 * 0.723e-3 / C0
        assert t_d == pytest.approx(nominal, rel=0.25)

    def test_probe_matches_port_voltage(self):
        structure = _small_line_structure()
        step = StepWaveform(high=1.0, t_start=20e-12, rise_time=20e-12)
        solver, near, far = structure.build_solver(
            ResistiveSourceTermination(137.0, step), ResistorTermination(137.0)
        )
        probe = solver.add_voltage_probe(
            EdgeVoltageProbe(
                "gap", "z",
                (structure.x_near, structure.y_port, structure.k_bottom),
                n_edges=1,
            )
        )
        fprobe = solver.add_field_probe(
            FieldProbe("ez_mid", "z", (structure.nx // 2, structure.y_port, structure.k_bottom + 1))
        )
        solver.run(duration=0.25e-9)
        np.testing.assert_allclose(probe.voltages, near.voltages, atol=1e-9)
        assert np.isfinite(fprobe.values).all()

    def test_lumped_site_rejects_boundary_edge(self):
        grid = YeeGrid(8, 8, 8, 1e-3)
        solver = FDTD3DSolver(grid)
        site = LumpedElementSite("bad", "z", (0, 4, 4), ResistorTermination(50.0))
        solver.add_lumped_element(site)
        with pytest.raises(ValueError):
            solver.run(n_steps=1)

    def test_flipped_termination_sign_convention(self):
        inner = ResistiveSourceTermination(100.0, lambda t: 1.0)
        flipped = FlippedTermination(inner)
        # flipped current at +v equals minus the inner current at -v
        assert flipped.current(0.5, 0.0) == pytest.approx(-inner.current(-0.5, 0.0))
        assert flipped.dcurrent_dv(0.5, 0.0) == pytest.approx(inner.dcurrent_dv(-0.5, 0.0))

    def test_run_requires_exactly_one_duration_spec(self):
        grid = YeeGrid(6, 6, 6, 1e-3)
        solver = FDTD3DSolver(grid)
        with pytest.raises(ValueError):
            solver.run()
        with pytest.raises(ValueError):
            solver.run(duration=1e-12, n_steps=5)

    def test_energy_decays_with_resistive_loads(self):
        """Passivity: with resistive terminations the late-time energy decays."""
        structure = _small_line_structure()
        pulse = GaussianPulse(amplitude=1.0, t_center=40e-12, sigma=10e-12)
        solver, near, far = structure.build_solver(
            ResistiveSourceTermination(137.0, pulse), ResistorTermination(137.0)
        )
        solver.run(duration=0.2e-9)
        early = solver.total_field_energy()
        solver.run(n_steps=600)
        late = solver.total_field_energy()
        assert late < early

    def test_macromodel_port_in_3d_is_stable(self, driver_model):
        structure = _small_line_structure()
        dt = courant_time_step(structure.mesh_size)
        bound = driver_model.bound(LogicStimulus.from_pattern("01", 0.5e-9))
        solver, near, far = structure.build_solver(
            MacromodelTermination.from_model(bound, dt),
            ParallelRCTermination(500.0, 1e-12, dt),
            dt=dt,
        )
        solver.run(duration=1.5e-9)
        assert np.all(np.abs(near.voltages) < 3.0)
        assert near.voltages[-1] == pytest.approx(1.8, abs=0.2)
        assert solver.newton_stats.max_iterations <= 5
