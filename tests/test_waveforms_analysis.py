"""Unit tests for waveform metrics, resampling and eye diagrams."""

import numpy as np
import pytest

from repro.waveforms.analysis import (
    compare_waveforms,
    crossing_times,
    max_abs_error,
    overshoot,
    propagation_delay,
    rms_error,
    settling_time,
    undershoot,
)
from repro.waveforms.eye import eye_diagram
from repro.waveforms.sampling import UniformGrid, linear_resample, resample_waveform, time_axis


class TestErrors:
    def test_rms_error_zero_for_identical(self):
        w = np.sin(np.linspace(0, 1, 50))
        assert rms_error(w, w) == 0.0

    def test_rms_error_constant_offset(self):
        w = np.zeros(10)
        assert rms_error(w, w + 0.5) == pytest.approx(0.5)

    def test_max_abs_error(self):
        a = np.zeros(5)
        b = np.array([0.0, 0.1, -0.4, 0.2, 0.0])
        assert max_abs_error(a, b) == pytest.approx(0.4)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            rms_error(np.zeros(4), np.zeros(5))

    def test_compare_waveforms_relative(self):
        ref = np.concatenate([np.zeros(50), np.ones(50) * 2.0])
        cand = ref + 0.02
        cmp_ = compare_waveforms(ref, cand)
        assert cmp_.rms == pytest.approx(0.02)
        assert cmp_.rms_relative == pytest.approx(0.01)
        assert cmp_.within(0.02)
        assert not cmp_.within(0.005)


class TestCrossings:
    def test_single_rising_crossing(self):
        t = np.linspace(0, 1, 101)
        v = t.copy()
        out = crossing_times(t, v, 0.5, rising=True)
        assert out.shape == (1,)
        assert out[0] == pytest.approx(0.5, abs=1e-6)

    def test_falling_only(self):
        t = np.linspace(0, 1, 101)
        v = 1.0 - t
        assert crossing_times(t, v, 0.5, rising=True).size == 0
        assert crossing_times(t, v, 0.5, rising=False).size == 1

    def test_propagation_delay(self):
        t = np.linspace(0, 10, 1001)
        vin = (t > 1.0).astype(float)
        vout = (t > 3.0).astype(float)
        assert propagation_delay(t, vin, vout, 0.5) == pytest.approx(2.0, abs=0.02)

    def test_propagation_delay_no_crossing_raises(self):
        t = np.linspace(0, 1, 11)
        with pytest.raises(ValueError):
            propagation_delay(t, np.zeros(11), np.ones(11), 0.5)


class TestOvershootSettling:
    def test_overshoot(self):
        v = np.array([0.0, 1.0, 1.4, 1.1, 1.0])
        assert overshoot(v, 1.0) == pytest.approx(0.4)
        assert overshoot(np.array([0.0, 0.9]), 1.0) == 0.0

    def test_undershoot(self):
        v = np.array([1.0, -0.3, 0.1])
        assert undershoot(v, 0.0) == pytest.approx(0.3)

    def test_settling_time(self):
        t = np.linspace(0, 10, 101)
        v = 1.0 + np.exp(-t) * np.cos(5 * t)
        ts = settling_time(t, v, 1.0, tolerance=0.05)
        assert 2.0 < ts < 5.0

    def test_settling_time_already_settled(self):
        t = np.linspace(0, 1, 11)
        assert settling_time(t, np.ones(11), 1.0, 0.1) == 0.0


class TestSampling:
    def test_uniform_grid_times(self):
        grid = UniformGrid(t0=0.0, dt=1e-9, n=5)
        np.testing.assert_allclose(grid.times, np.arange(5) * 1e-9)
        assert grid.duration == pytest.approx(4e-9)

    def test_from_duration_includes_endpoint(self):
        grid = UniformGrid.from_duration(1e-9, 0.25e-9)
        assert grid.n == 5

    def test_resampling_factor(self):
        grid = UniformGrid(0.0, 25e-12, 10)
        assert grid.resampling_factor(5e-12) == pytest.approx(0.2)

    def test_time_axis(self):
        t = time_axis(1e-9, 0.5e-9)
        np.testing.assert_allclose(t, [0.0, 0.5e-9, 1e-9])

    def test_linear_resample_matches_interp(self):
        t = np.linspace(0, 1, 11)
        v = t**2
        new_t = np.linspace(0, 1, 21)
        np.testing.assert_allclose(linear_resample(t, v, new_t), np.interp(new_t, t, v))

    def test_resample_waveform_preserves_linear_ramp(self):
        v = np.linspace(0.0, 1.0, 11)  # dt = 1
        out = resample_waveform(v, 1.0, 0.5)
        np.testing.assert_allclose(out, np.linspace(0.0, 1.0, 21), atol=1e-12)

    def test_resample_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            resample_waveform(np.zeros(5), -1.0, 1.0)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            UniformGrid(0.0, 0.0, 5)
        with pytest.raises(ValueError):
            UniformGrid(0.0, 1.0, 0)


class TestEyeDiagram:
    def _bit_wave(self, pattern, bit_time=1e-9, dt=1e-11, high=1.0):
        n_per = int(bit_time / dt)
        v = np.concatenate([np.full(n_per, high if b == "1" else 0.0) for b in pattern])
        t = dt * np.arange(v.size)
        return t, v

    def test_fold_counts(self):
        t, v = self._bit_wave("0101011100")
        eye = eye_diagram(t, v, 1e-9)
        assert eye.n_traces == 10

    def test_clean_eye_is_open(self):
        t, v = self._bit_wave("01010111001010")
        eye = eye_diagram(t, v, 1e-9)
        assert eye.eye_height(0.0, 1.0) > 0.9
        assert eye.eye_width(0.0, 1.0) > 0.5e-9

    def test_closed_eye(self):
        t, v = self._bit_wave("01010101")
        v = 0.5 + 0.0 * v  # stuck at the threshold: no opening
        eye = eye_diagram(t, v, 1e-9)
        assert eye.eye_height(0.0, 1.0) == 0.0
        assert eye.eye_width(0.0, 1.0) == 0.0

    def test_rejects_non_uniform_times(self):
        t = np.array([0.0, 1.0, 3.0, 4.0])
        with pytest.raises(ValueError):
            eye_diagram(t, np.zeros(4), 2.0)

    def test_rejects_short_bit_time(self):
        t, v = self._bit_wave("01")
        with pytest.raises(ValueError):
            eye_diagram(t, v, 1e-12)


class TestEyeFoldingExactness:
    """Regressions for the PR-10 eye.py fixes.

    Before them, ``eye_diagram`` silently refolded at
    ``round(bit_time/dt) * dt`` when the ratio was not an integer
    (accumulating one residual per trace), started the phase axis at 0
    even for an off-grid ``t_start``, and ``eye_width`` both counted a
    ``k``-sample clear run as ``k*dt`` (it spans ``(k-1)*dt``) and split
    a boundary-centred eye into two short runs.
    """

    def _square(self, bits, bit_time, dt, t0=0.0):
        """Ideal square wave sampled off any bit-aligned grid."""
        t = t0 + dt * np.arange(int(len(bits) * bit_time / dt))
        idx = np.minimum((t / bit_time).astype(int), len(bits) - 1)
        v = np.array([float(bits[i]) for i in idx])
        return t, v

    def test_non_integer_ratio_keeps_requested_bit_time(self):
        bits = "01" * 10
        t, v = self._square(bits, bit_time=1.0, dt=0.3)
        eye = eye_diagram(t, v, 1.0)
        # the reported period is exactly the requested one, never a
        # silently rounded 0.9 (= round(10/3) * 0.3)
        assert eye.bit_time == 1.0
        assert eye.n_traces == len(bits)

    def test_non_integer_ratio_does_not_drift(self):
        # bit_time/dt = 10/3: the old reshape at round(10/3)=3 samples
        # drifts by 0.1 per trace — by trace 5 the fold is misaligned by
        # half a bit and the centre sample reads the *wrong* bit.
        bits = "01" * 10
        t, v = self._square(bits, bit_time=1.0, dt=0.3)
        eye = eye_diagram(t, v, 1.0)
        centre = np.argmin(np.abs(eye.phase - 0.5))
        for k in range(eye.n_traces):
            assert eye.traces[k, centre] == float(bits[k]), f"trace {k} misaligned"

    def test_per_trace_alignment_error_bounded(self):
        # Exact folding keeps every trace within dt/2 of its true bit
        # boundary: samples further than dt/2 from an edge always carry
        # their own bit's value, for every trace index.
        bits = "0110100110101001"
        bit_time, dt = 1.0, 0.7
        t, v = self._square(bits, bit_time=bit_time, dt=dt)
        eye = eye_diagram(t, v, bit_time)
        starts = np.rint(np.arange(eye.n_traces) * bit_time / dt)
        for k in range(eye.n_traces):
            sample_times = t[int(starts[k]): int(starts[k]) + eye.phase.size]
            for s, value in zip(sample_times, eye.traces[k]):
                distance = abs(s - np.round(s / bit_time) * bit_time)
                if distance > 0.5 * dt + 1e-12:
                    assert value == float(bits[min(int(s // bit_time), len(bits) - 1)])

    def test_off_grid_t_start_anchors_phase(self):
        # t_start = 0.25 between samples (dt = 0.1): the first kept
        # sample sits at 0.3, so the phase axis starts at 0.05 — not 0.
        dt = 0.1
        t = dt * np.arange(100)
        v = np.sin(t)
        eye = eye_diagram(t, v, 1.0, t_start=0.25)
        assert eye.phase[0] == pytest.approx(0.05)
        assert np.all(eye.phase < 1.0)
        # the folded samples really are the post-t_start ones
        assert eye.traces[0, 0] == pytest.approx(np.sin(0.3))

    def test_on_grid_t_start_keeps_zero_phase(self):
        dt = 0.1
        t = dt * np.arange(100)
        eye = eye_diagram(t, np.sin(t), 1.0, t_start=0.5)
        assert eye.phase[0] == pytest.approx(0.0, abs=1e-12)

    def test_t_start_before_data_advances_by_whole_bits(self):
        # a boundary before times[0] moves forward by whole bit periods
        # instead of producing a bogus multi-bit phase offset
        dt = 0.1
        t = 5.0 + dt * np.arange(50)
        eye = eye_diagram(t, np.sin(t), 1.0, t_start=0.0)
        assert eye.phase[0] == pytest.approx(0.0, abs=1e-9)
        assert np.all(eye.phase < 1.0)


class TestEyeWidthGeometry:
    """eye_width span and circularity regressions (PR-10)."""

    def _eye(self, clear_idx, n=10, bit_time=1.0):
        from repro.waveforms.eye import EyeDiagram

        dt = bit_time / n
        phase = dt * np.arange(n)
        # one trace, high where clear, pinned to the midline elsewhere
        trace = np.where(np.isin(np.arange(n), clear_idx), 1.0, 0.5)
        return EyeDiagram(phase=phase, traces=trace[None, :], bit_time=bit_time)

    def test_run_spans_k_minus_one_dt(self):
        # 3 clear samples at 0.3/0.4/0.5 span 0.2, not 0.3
        eye = self._eye([3, 4, 5])
        assert eye.eye_width(0.0, 1.0) == pytest.approx(0.2)

    def test_boundary_centred_eye_measured_circularly(self):
        # clear at phases 0.8, 0.9, 0.0, 0.1: one wrapped run spanning
        # 0.3 through the UI boundary (the old scan saw two runs of 2)
        eye = self._eye([8, 9, 0, 1])
        assert eye.eye_width(0.0, 1.0) == pytest.approx(0.3)

    def test_fully_clear_axis_reports_whole_ui(self):
        eye = self._eye(list(range(10)))
        assert eye.eye_width(0.0, 1.0) == pytest.approx(1.0)

    def test_no_clear_phase_reports_zero(self):
        eye = self._eye([])
        assert eye.eye_width(0.0, 1.0) == 0.0
