"""Linear-solver backend equivalence and routing (PR 4).

Pins the contracts of :mod:`repro.perf.backends`:

* sparse-vs-dense waveforms agree to <= 1e-12 relative on linear ladders,
  2-D meshes and nonlinear (macromodel / transistor) circuits;
* a purely linear sparse transient performs exactly one symbolic and one
  numeric factorization; nonlinear transients reuse the cached sparsity
  pattern;
* backend auto-selection (``REPRO_SPARSE_THRESHOLD`` override included)
  and the ``engine.sparse_mna`` / ``engine.batch_prepare`` job routing;
* cross-scenario ``BatchedPrepare`` folding matches sequential runs;
* the scipy-less degradation path (import-hook monkeypatch) still matches
  the reference solver.
"""

from __future__ import annotations

import dataclasses
import importlib
import sys

import numpy as np
import pytest

from repro.circuits.elements import Capacitor, Resistor, VoltageSource
from repro.circuits.ladder import (
    CapacitorBank,
    add_lc_ladder,
    rc_grid_circuit,
    rc_ladder_circuit,
)
from repro.circuits.netlist import GROUND, Circuit
from repro.circuits.transient import TransientOptions, TransientSolver
from repro.perf import backends as backends_mod
from repro.perf.backends import resolve_backend_name, sparse_threshold
from repro.waveforms.signals import BitPattern

REL_TOL = 1e-12


def _stimulus():
    return BitPattern(pattern="0110", bit_time=1e-9, low=0.0, high=1.8, edge_time=1e-10)


def _rel_err(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.max(np.abs(a - b))) / max(float(np.max(np.abs(b))), 1e-30)


def _run(circuit_factory, probe, backend=None, fast=None, duration=2.5e-9, dt=1e-11):
    solver = TransientSolver(
        circuit_factory(), dt, options=TransientOptions(fast=fast, backend=backend)
    )
    result = solver.run(duration, record_nodes=[probe], record_branches=[])
    return result.voltage(probe), solver.perf_stats


class TestLinearEquivalence:
    def test_ladder_sparse_matches_dense_and_reference(self):
        factory = lambda: rc_ladder_circuit(60, waveform=_stimulus())[0]  # noqa: E731
        ref, _ = _run(factory, "n20", fast=False)
        dense, dense_stats = _run(factory, "n20", backend="dense")
        sparse, sparse_stats = _run(factory, "n20", backend="sparse")
        assert np.max(np.abs(ref)) > 0.5  # the probe actually sees the signal
        assert _rel_err(dense, ref) <= REL_TOL
        assert _rel_err(sparse, ref) <= REL_TOL
        assert dense_stats["backend"] == "dense"
        assert sparse_stats["backend"] == "sparse"

    def test_mesh_sparse_matches_dense(self):
        factory = lambda: rc_grid_circuit(8, 8, waveform=_stimulus())[0]  # noqa: E731
        dense, _ = _run(factory, "g1_1", backend="dense")
        sparse, _ = _run(factory, "g1_1", backend="sparse")
        assert np.max(np.abs(dense)) > 0.5
        assert _rel_err(sparse, dense) <= REL_TOL

    def test_linear_sparse_factors_exactly_once(self):
        factory = lambda: rc_ladder_circuit(40, waveform=_stimulus())[0]  # noqa: E731
        _, stats = _run(factory, "n20", backend="sparse")
        assert stats["linear_only"] is True
        assert stats["symbolic_factorizations"] == 1
        assert stats["sparse_factorizations"] == 1
        assert stats["factorizations"] == 1
        assert stats["cached_solves"] > 0
        assert stats["dense_solves"] == 0

    def test_capacitor_bank_matches_individual_capacitors(self):
        def individual():
            circuit = Circuit("individual")
            circuit.add(VoltageSource("vin", "in", GROUND, _stimulus()))
            prev = "in"
            for k in range(30):
                node = f"n{k + 1}"
                circuit.add(Resistor(f"r{k}", prev, node, 1.0))
                circuit.add(Capacitor(f"c{k}", node, GROUND, 10e-15))
                prev = node
            circuit.add(Resistor("rload", prev, GROUND, 500.0))
            return circuit

        def banked():
            circuit = Circuit("banked")
            circuit.add(VoltageSource("vin", "in", GROUND, _stimulus()))
            prev = "in"
            nodes = []
            for k in range(30):
                node = f"n{k + 1}"
                circuit.add(Resistor(f"r{k}", prev, node, 1.0))
                nodes.append(node)
                prev = node
            circuit.add(CapacitorBank("cbank", nodes, 10e-15))
            circuit.add(Resistor("rload", prev, GROUND, 500.0))
            return circuit

        ref, _ = _run(individual, "n15", fast=False)
        for backend in (None, "dense", "sparse"):
            wave, _ = _run(banked, "n15", backend=backend)
            assert _rel_err(wave, ref) <= REL_TOL


class TestNonlinearEquivalence:
    def test_rbf_ladder_link_sparse_matches_dense(self, params, driver_model, receiver_model):
        from repro.circuits.rbf_element import MacromodelElement
        from repro.macromodel.driver import LogicStimulus

        dt = 1e-11

        def factory():
            stimulus = LogicStimulus.from_pattern("010", 2e-9)
            circuit = Circuit("rbf-ladder")
            circuit.add(
                MacromodelElement("drv", "near", GROUND, driver_model.bound(stimulus), dt)
            )
            add_lc_ladder(circuit, "tl", "near", "far", 131.0, 0.4e-9, 40)
            circuit.add(Resistor("rload", "far", GROUND, 500.0))
            circuit.add(Capacitor("cload", "far", GROUND, 1e-12))
            circuit.add(MacromodelElement("rx", "far", GROUND, receiver_model, dt))
            return circuit

        dense, dense_stats = _run(factory, "far", backend="dense", duration=3e-9, dt=dt)
        sparse, sparse_stats = _run(factory, "far", backend="sparse", duration=3e-9, dt=dt)
        assert np.max(np.abs(dense)) > 0.5
        assert _rel_err(sparse, dense) <= REL_TOL
        assert dense_stats["linear_only"] is False
        # the union pattern is built once and then reused every iteration
        assert sparse_stats["symbolic_factorizations"] == 1
        assert sparse_stats["pattern_reuses"] > 100
        assert sparse_stats["sparse_factorizations"] == sparse_stats["factorizations"]

    def test_transistor_driver_pattern_growth(self, params):
        # CMOS inverter stages switch between cutoff and conduction; a
        # MOSFET in cutoff skips its stamps entirely, so the sparse union
        # pattern grows when it first conducts — waveforms must still match.
        from repro.circuits.devices import add_cmos_driver
        from repro.waveforms.signals import PiecewiseLinearWaveform

        def factory():
            stimulus = PiecewiseLinearWaveform(
                [0.0, 0.5e-9, 0.6e-9, 2e-9], [0.0, 0.0, params.vdd, params.vdd]
            )
            circuit = Circuit("inverter")
            add_cmos_driver(circuit, "drv", "pad", stimulus, params)
            circuit.add(Resistor("rload", "pad", GROUND, 500.0))
            return circuit

        dense, _ = _run(factory, "pad", backend="dense", duration=2e-9, dt=1e-11)
        sparse, stats = _run(factory, "pad", backend="sparse", duration=2e-9, dt=1e-11)
        assert np.max(np.abs(dense)) > 0.5
        assert _rel_err(sparse, dense) <= REL_TOL
        assert stats["symbolic_factorizations"] >= 1
        assert stats["pattern_reuses"] > 0


class TestBackendResolution:
    def test_auto_threshold(self):
        assert resolve_backend_name(None, 8) == "dense"
        assert resolve_backend_name("auto", sparse_threshold()) == "dense"
        assert resolve_backend_name(None, sparse_threshold() + 1) == "sparse"
        assert resolve_backend_name("dense", 100000) == "dense"
        assert resolve_backend_name("sparse", 4) == "sparse"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown linear-solver backend"):
            resolve_backend_name("cholesky", 10)
        with pytest.raises(ValueError, match="backend must be one of"):
            TransientOptions(backend="cholesky")

    def test_env_threshold_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "10")
        assert sparse_threshold() == 10
        assert resolve_backend_name(None, 11) == "sparse"
        monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "not-a-number")
        assert sparse_threshold() == backends_mod.SPARSE_THRESHOLD

    def test_auto_selects_sparse_above_env_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "16")
        factory = lambda: rc_ladder_circuit(40, waveform=_stimulus())[0]  # noqa: E731
        _, stats = _run(factory, "n20", duration=0.5e-9)
        assert stats["backend"] == "sparse"


class TestSweepBackends:
    def _scenarios(self):
        from repro.sweep.scenario import Scenario

        return [
            Scenario(name="a", bit_pattern="010"),
            Scenario(name="b", bit_pattern="011"),
            Scenario(name="c", bit_pattern="010", corner={"z0": 100.0}),
        ]

    def test_linear_sweep_sparse_backend_matches_sequential(self):
        from repro.sweep.links import linear_link_sweep

        options = TransientOptions(backend="sparse")
        sweep = linear_link_sweep(
            self._scenarios(), dt=1e-11, duration=3e-9, options=options
        )
        batched = sweep.run()
        sequential = sweep.run_sequential()
        for name in ("a", "b", "c"):
            for node in ("near", "far"):
                err = _rel_err(
                    batched.results[name].voltage(node),
                    sequential.results[name].voltage(node),
                )
                assert err <= REL_TOL
        # two static groups (nominal corner shared by a+b, c alone), each
        # factored exactly once for the whole batch
        assert batched.perf_stats["static_groups"] == 2
        assert batched.perf_stats["shared_factorizations"] == 2
        assert batched.perf_stats["block_solves"] > 0


class TestBatchedPrepare:
    def test_rbf_sweep_batch_prepare_matches_sequential(self, driver_model, receiver_model):
        from repro.sweep.links import rbf_link_sweep
        from repro.sweep.scenario import Scenario

        scenarios = [
            Scenario(name=f"s{k}", bit_pattern=pattern)
            for k, pattern in enumerate(["010", "011", "0110"])
        ]
        devices = {None: (driver_model, receiver_model)}
        batched = rbf_link_sweep(
            scenarios, devices, dt=1e-11, duration=3e-9, batch_prepare=True
        ).run()
        sequential = rbf_link_sweep(
            scenarios, devices, dt=1e-11, duration=3e-9
        ).run_sequential()
        for scenario in scenarios:
            for node in ("near", "far"):
                err = _rel_err(
                    batched.results[scenario.name].voltage(node),
                    sequential.results[scenario.name].voltage(node),
                )
                assert err <= REL_TOL
        assert batched.perf_stats["batched_prepare_folds"] > 0
        assert batched.perf_stats["batched_prepare_scenarios"] >= (
            3 * batched.perf_stats["batched_prepare_folds"] // 2
        )

    def test_flag_off_keeps_scalar_prepare(self, driver_model, receiver_model):
        from repro.sweep.links import rbf_link_sweep
        from repro.sweep.scenario import Scenario

        scenarios = [Scenario(name="x", bit_pattern="010"), Scenario(name="y", bit_pattern="011")]
        result = rbf_link_sweep(
            scenarios, {None: (driver_model, receiver_model)}, dt=1e-11, duration=1e-9
        ).run()
        assert result.perf_stats["batched_prepare_folds"] == 0


class TestJobRouting:
    def _sparse_spec(self, segments=100):
        # ~200 unknowns: small enough that the sparse_mna=False comparison
        # job auto-resolves to the dense backend.
        from repro.api import SimulationSpec
        from repro.api.spec import DeviceSpec, EngineOptions, LinkSpec

        return SimulationSpec(
            kind="circuit",
            duration=1.5e-9,
            devices=DeviceSpec(source="library", n_centers=20),
            link=LinkSpec(segments=segments),
            engine=EngineOptions(dt=1e-11, sparse_mna=True),
        )

    def test_sparse_mna_job_runs_on_sparse_backend(self):
        from repro.api import run

        spec = self._sparse_spec()
        result = run(spec)
        assert result.perf_stats["backend"] == "sparse"
        assert result.perf_stats["symbolic_factorizations"] == 1
        dense = run(dataclasses.replace(
            spec, engine=dataclasses.replace(spec.engine, sparse_mna=False)
        ))
        assert dense.perf_stats["backend"] == "dense"
        err = _rel_err(result.waveform("far_end"), dense.waveform("far_end"))
        assert err <= REL_TOL

    def test_batch_prepare_job_runs_and_folds(self, driver_model, receiver_model):
        from repro.api import SimulationSpec, run
        from repro.api.spec import EngineOptions, ScenarioSpec
        from repro.experiments.devices import ReferenceMacromodels
        from repro.macromodel.library import ReferenceDeviceParameters

        spec = SimulationSpec(
            kind="sweep",
            duration=1.5e-9,
            scenarios=(
                ScenarioSpec(name="a", bit_pattern="010"),
                ScenarioSpec(name="b", bit_pattern="011"),
            ),
            engine=EngineOptions(dt=1e-11, sweep_family="rbf", batch_prepare=True),
        )
        models = ReferenceMacromodels(
            driver=driver_model, receiver=receiver_model,
            params=ReferenceDeviceParameters(), source="library",
        )
        result = run(spec, models=models)
        assert result.perf_stats["batched_prepare_folds"] > 0

    def test_golden_sparse_ladder_fixture_is_valid(self):
        import os

        from repro.api import load_spec

        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "examples", "jobs", "sparse_ladder.json",
        )
        spec = load_spec(path)
        assert spec.kind == "circuit"
        assert spec.engine.sparse_mna is True
        assert spec.link.segments >= 200  # well past the sparse threshold

    def test_golden_batched_sweep_fixture_is_valid(self):
        import os

        from repro.api import load_spec

        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "examples", "jobs", "pattern_corner_sweep_batched.json",
        )
        spec = load_spec(path)
        assert spec.kind == "sweep"
        assert spec.engine.batch_prepare is True


class TestSingularRobustness:
    def _singular_circuit(self):
        # Two voltage sources across the same node pair: duplicate branch
        # rows make the MNA matrix exactly singular.
        circuit = Circuit("singular")
        circuit.add(VoltageSource("v1", "a", GROUND, 1.0))
        circuit.add(VoltageSource("v2", "a", GROUND, 1.0))
        circuit.add(Resistor("r1", "a", GROUND, 100.0))
        return circuit

    @pytest.mark.filterwarnings("ignore::scipy.linalg.LinAlgWarning")
    def test_sparse_linear_singular_falls_back_like_dense(self):
        dense, dense_stats = _run(self._singular_circuit, "a", backend="dense",
                                  duration=2e-10)
        sparse, sparse_stats = _run(self._singular_circuit, "a", backend="sparse",
                                    duration=2e-10)
        assert np.all(np.isfinite(dense)) and np.all(np.isfinite(sparse))
        assert _rel_err(sparse, dense) <= REL_TOL
        # both backends end on the robust dense lstsq path, never a cache
        assert dense_stats["dense_solves"] > 0
        assert sparse_stats["dense_solves"] > 0

    def test_shared_context_sparse_singular_block_solve(self):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        from repro.perf.mna import SharedStaticContext

        context = SharedStaticContext()
        singular = scipy_sparse.csc_matrix(np.ones((2, 2)))
        context.sparse_state = (None, None, None, singular)
        context.ensure_factorized()  # must not raise
        assert context.sparse_lu is None
        x = context.solve_block(np.ones((2, 2)))
        assert np.all(np.isfinite(x))


class TestSweepSegments:
    def _spec(self, family):
        from repro.api import SimulationSpec
        from repro.api.spec import EngineOptions, LinkSpec, ScenarioSpec

        return SimulationSpec(
            kind="sweep",
            duration=1e-9,
            link=LinkSpec(segments=30),
            scenarios=(
                ScenarioSpec(name="a", bit_pattern="010"),
                ScenarioSpec(name="b", bit_pattern="011"),
            ),
            engine=EngineOptions(dt=1e-11, sweep_family=family),
        )

    def test_link_segments_reach_the_sweep_builders(self):
        # A sweep job asking for an LC-ladder interconnect must actually
        # get one (regression: the builders used to ignore link.segments).
        from repro.sweep.links import LinearLinkSpec, RBFLinkSpec
        from repro.sweep.scenario import Scenario

        spec = self._spec("linear")
        link_spec = LinearLinkSpec.from_job_spec(spec)
        assert link_spec.segments == 30
        circuit = link_spec.build(Scenario(name="a", bit_pattern="010"))
        names = {element.name for element in circuit.elements}
        # ladder banks, not a MoC line (PR 5 banked the ladder generators)
        assert "tl_l" in names and "tl_c" in names
        assert len(circuit.element("tl_l")) == 30
        assert RBFLinkSpec.from_job_spec(self._spec("rbf")).segments == 30

    def test_linear_ladder_sweep_runs_through_the_api(self):
        from repro.api import run

        result = run(self._spec("linear"))
        assert result.perf_stats["shared_factorizations"] >= 1
        for name in result.names():
            assert np.all(np.isfinite(result.waveform(name)))


class _ScipyBlocker:
    """Meta-path finder that refuses every scipy import."""

    def find_spec(self, name, path=None, target=None):
        if name == "scipy" or name.startswith("scipy."):
            raise ImportError(f"{name} blocked by test")
        return None


class TestScipylessDegradation:
    @pytest.fixture()
    def no_scipy(self):
        """Reload the backend layer with scipy imports blocked."""
        import repro.perf.mna as mna_mod

        blocker = _ScipyBlocker()
        saved = {
            name: sys.modules.pop(name)
            for name in list(sys.modules)
            if name == "scipy" or name.startswith("scipy.")
        }
        sys.meta_path.insert(0, blocker)
        try:
            importlib.reload(backends_mod)
            importlib.reload(mna_mod)
            assert backends_mod._lu_factor is None
            assert backends_mod._splu is None
            yield
        finally:
            sys.meta_path.remove(blocker)
            sys.modules.update(saved)
            importlib.reload(backends_mod)
            importlib.reload(mna_mod)
            assert backends_mod._lu_factor is not None

    def test_dense_fallback_matches_reference(self, no_scipy):
        factory = lambda: rc_ladder_circuit(25, waveform=_stimulus())[0]  # noqa: E731
        ref, _ = _run(factory, "n15", fast=False)
        wave, stats = _run(factory, "n15")
        assert np.max(np.abs(ref)) > 0.5
        assert _rel_err(wave, ref) <= REL_TOL
        # no scipy: no cached LU, a dense numpy solve per iteration instead
        assert stats["backend"] == "dense"
        assert stats["dense_solves"] > 0
        assert stats["cached_solves"] == 0
        assert stats["factorizations"] == 0

    def test_sparse_request_degrades_to_dense_with_warning(self, no_scipy):
        assert backends_mod.sparse_available() is False
        # auto selection degrades silently; an explicit request warns
        assert backends_mod.resolve_backend_name("auto", 10000) == "dense"
        with pytest.warns(RuntimeWarning, match="scipy is unavailable"):
            assert backends_mod.resolve_backend_name("sparse", 10000) == "dense"
        factory = lambda: rc_ladder_circuit(25, waveform=_stimulus())[0]  # noqa: E731
        ref, _ = _run(factory, "n15", fast=False)
        with pytest.warns(RuntimeWarning, match="falling back to the dense"):
            wave, stats = _run(factory, "n15", backend="sparse", duration=1e-9)
        assert stats["backend"] == "dense"
        assert _rel_err(wave, ref[: wave.size]) <= REL_TOL
