"""Integration tests: cross-engine consistency on shortened versions of the
paper's experiments (the full-size runs live in ``benchmarks/``).

These are the heart of the reproduction: the same physical link simulated by
the SPICE-class engine with transistor-level devices, the SPICE-class engine
with RBF macromodels, the 1-D FDTD hybrid and the 3-D FDTD hybrid must
produce consistent terminal waveforms (paper Figures 4 and 5), and the PCB
run must show the incident field superimposing a visible disturbance
(Figure 7).
"""

import numpy as np
import pytest

from repro.circuits.testbenches import run_link_rbf, run_link_transistor
from repro.core.cosim import LinkDescription
from repro.experiments.devices import ReferenceMacromodels
from repro.experiments.fig4_rc_load import run_fdtd1d_link, run_fdtd3d_link
from repro.experiments.reporting import engine_agreement
from repro.structures.validation_line import ValidationLineStructure, estimate_line_parameters


@pytest.fixture(scope="module")
def library_models(driver_model, receiver_model, params):
    """Fast analytic macromodels packaged for the experiment helpers."""
    return ReferenceMacromodels(
        driver=driver_model, receiver=receiver_model, params=params, source="library"
    )


@pytest.fixture(scope="module")
def short_line():
    """A shortened validation line plus its measured effective constants."""
    structure = ValidationLineStructure.scaled(0.2)
    z_c, t_d = estimate_line_parameters(structure)
    return structure, z_c, t_d


class TestRBFEnginesMutualConsistency:
    """The three RBF-based engines must agree closely with one another
    (they share the same macromodel, so residual differences measure only
    the interconnect models and the hybridisation)."""

    @pytest.fixture(scope="class")
    def rbf_results(self, library_models, short_line):
        structure, z_c, t_d = short_line
        link = LinkDescription(load="rc", z0=z_c, delay=t_d, duration=4e-9)
        spice = run_link_rbf(link, library_models.driver, library_models.receiver,
                             dt=10e-12, params=library_models.params)
        fdtd1d = run_fdtd1d_link(library_models, link, z_c, t_d)
        fdtd3d = run_fdtd3d_link(structure, library_models, link)
        return spice, fdtd1d, fdtd3d

    def test_fdtd1d_matches_spice_rbf(self, rbf_results):
        spice, fdtd1d, _ = rbf_results
        metrics = engine_agreement(spice, fdtd1d)
        assert metrics["near_end"] < 0.05
        assert metrics["far_end"] < 0.05

    def test_fdtd3d_matches_spice_rbf(self, rbf_results):
        spice, _, fdtd3d = rbf_results
        metrics = engine_agreement(spice, fdtd3d)
        assert metrics["near_end"] < 0.08
        assert metrics["far_end"] < 0.08

    def test_waveforms_swing_rail_to_rail(self, rbf_results):
        spice, _, fdtd3d = rbf_results
        for result in (spice, fdtd3d):
            far = result.voltage("far_end")
            assert far.max() > 1.5          # reaches near the supply (with overshoot)
            assert far.min() < 0.3          # returns towards ground
        # RC load on a higher-impedance line overshoots above the rail
        assert spice.voltage("far_end").max() > 1.9

    def test_newton_iterations_stay_small(self, rbf_results):
        _, fdtd1d, fdtd3d = rbf_results
        assert fdtd1d.newton_stats.max_iterations <= 4
        assert fdtd3d.newton_stats.max_iterations <= 4
        assert fdtd1d.newton_stats.failures == 0


class TestTransistorVersusMacromodel:
    """SPICE with transistor-level devices versus SPICE with the macromodel:
    the library macromodel captures the static drive strength, so the two
    engines agree on levels; edge timing differs slightly because the
    library switching weights are analytic rather than identified."""

    def test_rc_load_levels_agree(self, library_models, short_line):
        _, z_c, t_d = short_line
        link = LinkDescription(load="rc", z0=z_c, delay=t_d, duration=4e-9)
        ref = run_link_transistor(link, library_models.params, dt=10e-12)
        rbf = run_link_rbf(link, library_models.driver, library_models.receiver,
                           dt=10e-12, params=library_models.params)
        t = ref.times
        far_ref = ref.voltage("far_end")
        far_rbf = rbf.resampled_voltage("far_end", t)
        # compare the settled levels of each bit (avoid the switching edges)
        for t_query, level in ((1.8e-9, 0.0), (3.8e-9, 1.8)):
            k = int(np.searchsorted(t, t_query))
            assert far_ref[k] == pytest.approx(level, abs=0.25)
            assert far_rbf[k] == pytest.approx(level, abs=0.25)
            assert far_rbf[k] == pytest.approx(far_ref[k], abs=0.25)

    def test_receiver_load_levels_agree(self, library_models, short_line):
        """The receiver load is almost purely capacitive, so the line rings
        for a long time after the up transition (as in the paper's Fig. 5);
        the two engines must agree on the ringing centre and on the presence
        of overshoot, even though their edge phases differ slightly."""
        _, z_c, t_d = short_line
        link = LinkDescription(load="receiver", z0=z_c, delay=t_d, duration=4e-9)
        ref = run_link_transistor(link, library_models.params, dt=10e-12)
        rbf = run_link_rbf(link, library_models.driver, library_models.receiver,
                           dt=10e-12, params=library_models.params)
        t = ref.times
        window = (t > 3e-9) & (t < 4e-9)
        ref_far = ref.voltage("far_end")
        rbf_far = rbf.resampled_voltage("far_end", t)
        # ringing centred on the supply rail for both engines
        assert np.mean(ref_far[window]) == pytest.approx(1.8, abs=0.25)
        assert np.mean(rbf_far[window]) == pytest.approx(np.mean(ref_far[window]), abs=0.25)
        # both show the capacitive-load overshoot above the rail
        assert ref_far.max() > 2.0
        assert rbf_far.max() > 2.0


class TestFigure7Disturbance:
    def test_incident_field_produces_disturbance(self, library_models):
        """On a reduced PCB the external field must visibly disturb the
        terminal voltages while leaving the no-field run unchanged."""
        from repro.experiments.fig7_pcb import run_figure7

        result = run_figure7(
            scale=0.3, duration=1.5e-9, bit_time=0.6e-9, models=library_models
        )
        assert result.disturbance["near_end"] > 0.01
        assert result.disturbance["far_end"] > 0.01
        for key, sim in result.results.items():
            assert np.all(np.isfinite(sim.voltage("near_end")))
            assert np.all(np.abs(sim.voltage("near_end")) < 10.0)
        series = result.series
        assert set(series) == {
            "NE, with ext. field",
            "FE, with ext. field",
            "NE, no ext. field",
            "FE, no ext. field",
        }
