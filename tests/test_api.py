"""Unified job API: spec round-trips, hashing, engines, Result, CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.api import (
    DeviceSpec,
    EngineOptions,
    LinkSpec,
    Result,
    ScenarioSpec,
    SimulationSpec,
    StimulusSpec,
    StructureSpec,
    get_engine,
    list_engines,
    load_spec,
    register_engine,
    run,
    spec_from_dict,
)
from repro.api.engines import EngineInfo, _REGISTRY
from repro.experiments.devices import ReferenceMacromodels
from repro.macromodel.serialization import macromodel_to_dict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JOBS_DIR = os.path.join(REPO_ROOT, "examples", "jobs")


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _make_spec(kind: str, driver_model=None) -> SimulationSpec:
    """A representative non-default spec of each kind."""
    common = dict(
        duration=3e-9,
        stimulus=StimulusSpec(bit_pattern="0110", bit_time=1.5e-9, edge_time=2e-10),
        link=LinkSpec(z0=120.0, delay=0.3e-9, load="rc",
                      load_resistance=350.0, load_capacitance=2e-12),
        label=f"round-trip fixture ({kind})",
    )
    if kind == "circuit":
        return SimulationSpec(
            kind="circuit",
            devices=DeviceSpec(source="library", seed=3, params={"vdd": 2.5}),
            engine=EngineOptions(dt=1e-11, variant="rbf"),
            **common,
        )
    if kind == "fdtd1d":
        devices = DeviceSpec(source="library")
        if driver_model is not None:
            devices = DeviceSpec(
                source="inline", driver=macromodel_to_dict(driver_model)
            )
        return SimulationSpec(
            kind="fdtd1d", devices=devices, engine=EngineOptions(n_cells=64), **common
        )
    if kind == "fdtd3d":
        return SimulationSpec(
            kind="fdtd3d", structure=StructureSpec(scale=0.25), **common
        )
    if kind == "sweep":
        return SimulationSpec(
            kind="sweep",
            scenarios=(
                ScenarioSpec(name="a", bit_pattern="010", drive_strength=1.1),
                ScenarioSpec(name="b", bit_pattern="011",
                             corner={"z0": 100.0, "load_resistance": 400.0}),
                ScenarioSpec(name="c", static_group="g1"),
            ),
            engine=EngineOptions(dt=1e-11, sweep_family="linear"),
            **common,
        )
    raise AssertionError(kind)


class TestSpecRoundTrip:
    @pytest.mark.parametrize("kind", ["circuit", "fdtd1d", "fdtd3d", "sweep"])
    def test_dict_round_trip_is_identity(self, kind):
        spec = _make_spec(kind)
        assert spec_from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("kind", ["circuit", "fdtd1d", "fdtd3d", "sweep"])
    def test_json_round_trip_is_identity(self, kind):
        spec = _make_spec(kind)
        rebuilt = spec_from_dict(json.loads(spec.to_json()))
        assert rebuilt == spec
        assert rebuilt.content_hash() == spec.content_hash()

    def test_inline_device_round_trip(self, driver_model):
        spec = _make_spec("fdtd1d", driver_model=driver_model)
        rebuilt = spec_from_dict(json.loads(spec.to_json()))
        assert rebuilt == spec
        assert rebuilt.devices.driver["kind"] == "driver"

    def test_unknown_top_level_key_rejected(self):
        data = _make_spec("circuit").to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            spec_from_dict(data)

    def test_unknown_block_key_rejected(self):
        data = _make_spec("circuit").to_dict()
        data["link"]["impedance"] = 50.0
        with pytest.raises(ValueError, match="impedance"):
            spec_from_dict(data)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SimulationSpec(kind="spectre")

    def test_wrong_format_version_rejected(self):
        data = _make_spec("circuit").to_dict()
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format_version"):
            spec_from_dict(data)

    def test_sweep_requires_scenarios(self):
        with pytest.raises(ValueError, match="scenario"):
            SimulationSpec(kind="sweep")

    def test_scenarios_only_for_sweep(self):
        with pytest.raises(ValueError, match="sweep"):
            SimulationSpec(kind="circuit", scenarios=(ScenarioSpec(name="a"),))

    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SimulationSpec(
                kind="sweep",
                scenarios=(ScenarioSpec(name="a"), ScenarioSpec(name="a")),
            )

    def test_linear_sweep_rejects_receiver_load(self):
        with pytest.raises(ValueError, match="linear sweep family"):
            SimulationSpec(
                kind="sweep",
                link=LinkSpec(load="receiver"),
                scenarios=(ScenarioSpec(name="a"),),
                engine=EngineOptions(sweep_family="linear"),
            )

    def test_nonpositive_link_values_rejected(self):
        with pytest.raises(ValueError, match="load_resistance"):
            LinkSpec(load_resistance=0.0)
        with pytest.raises(ValueError, match="load_capacitance"):
            LinkSpec(load_capacitance=-1e-12)

    def test_rbf_sweep_rejects_drive_strength(self):
        with pytest.raises(ValueError, match="drive_strength"):
            SimulationSpec(
                kind="sweep",
                scenarios=(ScenarioSpec(name="a", drive_strength=1.2),),
                engine=EngineOptions(sweep_family="rbf"),
            )

    def test_unknown_device_param_rejected(self):
        with pytest.raises(ValueError, match="unknown device parameter"):
            DeviceSpec(params={"not_a_param": 1.0})

    def test_bad_stimulus_pattern_rejected(self):
        with pytest.raises(ValueError, match="bit_pattern"):
            StimulusSpec(bit_pattern="01x")

    @pytest.mark.parametrize(
        "mutation",
        [
            {"stimulus": {"bit_pattern": 5}},
            {"stimulus": {"bit_time": "fast"}},
            {"duration": None},
            {"link": {"z0": [131.0]}},
            {"engine": {"n_cells": 50.5}},
            {"devices": {"seed": "zero"}},
        ],
    )
    def test_malformed_values_raise_value_error_not_type_error(self, mutation):
        # the CLI's error handler catches ValueError; a TypeError would crash
        data = _make_spec("circuit").to_dict()
        for key, value in mutation.items():
            if isinstance(value, dict):
                data[key] = {**data[key], **value}
            else:
                data[key] = value
        with pytest.raises(ValueError):
            spec_from_dict(data)

    def test_malformed_scenario_corner_raises_value_error(self):
        data = _make_spec("sweep").to_dict()
        data["scenarios"][0]["corner"] = {"z0": "high"}
        with pytest.raises(ValueError, match="corner"):
            spec_from_dict(data)

    def test_int_corner_values_normalised_to_float(self):
        a = ScenarioSpec(name="a", corner={"z0": 100})
        b = ScenarioSpec(name="a", corner={"z0": 100.0})
        assert a == b


class TestContentHash:
    def test_hash_ignores_dict_ordering(self):
        spec = _make_spec("sweep")
        data = spec.to_dict()
        reordered = json.loads(
            json.dumps({k: data[k] for k in reversed(list(data))})
        )
        assert spec_from_dict(reordered).content_hash() == spec.content_hash()

    def test_hash_differs_on_content(self):
        a = _make_spec("circuit")
        b = spec_from_dict({**a.to_dict(), "duration": 4e-9})
        assert a.content_hash() != b.content_hash()

    def test_hash_stable_across_processes(self, tmp_path):
        spec = _make_spec("sweep")
        path = tmp_path / "job.json"
        spec.save(str(path))
        script = (
            "from repro.api import load_spec; "
            f"print(load_spec({str(path)!r}).content_hash())"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=_subprocess_env(), cwd=REPO_ROOT,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == spec.content_hash()


class TestRegistry:
    def test_all_four_kinds_registered(self):
        kinds = [info.kind for info in list_engines()]
        assert kinds == ["circuit", "fdtd1d", "fdtd3d", "sweep"]

    def test_unknown_kind_lookup(self):
        with pytest.raises(KeyError, match="available"):
            get_engine("warp-drive")

    def test_register_and_restore(self):
        calls = []

        @register_engine("circuit", summary="test shadow")
        def shadow(spec, models=None):
            calls.append(spec.kind)
            return Result(times=np.zeros(1), waveforms={}, engine="shadow")

        try:
            info = get_engine("circuit")
            assert isinstance(info, EngineInfo) and info.summary == "test shadow"
            result = run(_make_spec("circuit"))
            assert result.engine == "shadow" and calls == ["circuit"]
        finally:
            # restore the stock adapter
            import importlib

            import repro.api.engines as engines_mod

            _REGISTRY.pop("circuit", None)
            importlib.reload(engines_mod)
        assert get_engine("circuit").summary != "test shadow"

    def test_formerly_reserved_options_have_registered_backends(self):
        # PR 4 closed the two reserved ROADMAP items: both flags are now
        # spec-addressable AND runnable (tests/test_backends.py pins the
        # equivalence; here we only check the registry wiring).
        from repro.api.engines import option_backend, supported_engine_options

        supported = supported_engine_options()
        assert set(supported) == {
            "sparse_mna", "batch_prepare", "workers", "shards", "warm_start",
        }
        assert "SparseBackend" in option_backend("sparse_mna")
        assert "BatchedPrepare" in option_backend("batch_prepare")
        assert "run_sharded" in option_backend("workers")
        assert "plan_shards" in option_backend("shards")
        assert "PlanStore" in option_backend("warm_start")
        import dataclasses

        spec = _make_spec("circuit")
        for flag in ("sparse_mna", "batch_prepare"):
            engine = dataclasses.replace(spec.engine, **{flag: True})
            requested = dataclasses.replace(spec, engine=engine)
            assert spec_from_dict(requested.to_dict()) == requested

    def test_unregistered_backed_option_error_is_self_explanatory(self, monkeypatch):
        # A build whose backend did not register (e.g. a future reserved
        # flag) must explain itself: the flag, the backend that would
        # implement it, and the options that ARE supported.
        import dataclasses

        import repro.api.engines as engines_mod

        monkeypatch.setitem(engines_mod._OPTION_BACKENDS, "sparse_mna", None)
        monkeypatch.delitem(engines_mod._OPTION_BACKENDS, "sparse_mna")
        spec = _make_spec("circuit")
        engine = dataclasses.replace(spec.engine, sparse_mna=True)
        requested = dataclasses.replace(spec, engine=engine)
        with pytest.raises(NotImplementedError) as excinfo:
            run(requested)
        message = str(excinfo.value)
        assert "engine.sparse_mna" in message
        # the hint names the implementing backend...
        assert "SparseBackend" in message
        # ...and the full set of still-supported options is listed.
        assert "engine.batch_prepare" in message
        assert "BatchedPrepare" in message


class TestResultContainer:
    def _result(self):
        times = np.linspace(0.0, 1e-9, 11)
        return Result(
            times=times,
            waveforms={"near": np.sin(times * 1e9), "far": np.cos(times * 1e9)},
            engine="unit-test",
            perf_stats={"solves": 3},
            meta={"kind": "circuit", "numpy_scalar": np.float64(1.5)},
        )

    def test_names_and_waveform(self):
        result = self._result()
        assert result.names() == ["far", "near"]
        assert result.waveform("near").shape == result.times.shape
        with pytest.raises(KeyError, match="available"):
            result.waveform("nope")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            Result(times=np.zeros(3), waveforms={"w": np.zeros(4)})

    def test_json_export_round_trip(self, tmp_path):
        result = self._result()
        path = tmp_path / "result.json"
        result.save_json(str(path))
        with open(path) as handle:
            data = json.load(handle)
        assert set(data["waveforms"]) == {"near", "far"}
        np.testing.assert_allclose(data["waveforms"]["near"], result.waveform("near"))
        assert data["meta"]["numpy_scalar"] == 1.5

    def test_npz_export(self, tmp_path):
        result = self._result()
        path = tmp_path / "result.npz"
        result.save_npz(str(path))
        with np.load(path) as archive:
            np.testing.assert_array_equal(archive["times"], result.times)
            np.testing.assert_array_equal(archive["w:far"], result.waveform("far"))
            meta = json.loads(str(archive["meta_json"]))
        assert meta["engine"] == "unit-test"


class TestUniformInterfaceOnNativeContainers:
    def test_simulation_result_names_and_waveform(self):
        from repro.core.cosim import SimulationResult

        times = np.linspace(0.0, 1e-9, 5)
        result = SimulationResult(
            times=times,
            voltages={"near_end": np.ones(5)},
            currents={"near_end": np.zeros(5)},
        )
        assert result.names() == ["i:near_end", "near_end"]  # sorted, like api.Result
        np.testing.assert_array_equal(result.waveform("near_end"), np.ones(5))
        np.testing.assert_array_equal(result.waveform("i:near_end"), np.zeros(5))
        with pytest.raises(KeyError, match="available"):
            result.waveform("i:far_end")


def _models(params, driver_model, receiver_model) -> ReferenceMacromodels:
    return ReferenceMacromodels(
        driver=driver_model, receiver=receiver_model, params=params, source="library"
    )


def _rel_diff(a: np.ndarray, b: np.ndarray) -> float:
    scale = max(np.max(np.abs(a)), 1e-30)
    return float(np.max(np.abs(a - b)) / scale)


class TestEngineEquivalence:
    """spec -> run() must reproduce the direct engine calls bit-for-bit."""

    def test_circuit_matches_run_link_rbf(self, params, driver_model, receiver_model):
        from repro.circuits.testbenches import run_link_rbf
        from repro.core.cosim import LinkDescription

        spec = SimulationSpec(
            kind="circuit", duration=2e-9,
            stimulus=StimulusSpec(bit_pattern="010", bit_time=1e-9),
            link=LinkSpec(z0=110.0, delay=0.2e-9, load="receiver"),
            engine=EngineOptions(dt=1e-11),
        )
        models = _models(params, driver_model, receiver_model)
        via_api = run(spec, models=models)
        direct = run_link_rbf(
            LinkDescription(z0=110.0, delay=0.2e-9, bit_pattern="010", bit_time=1e-9,
                            duration=2e-9, load="receiver"),
            driver_model, receiver_model, dt=1e-11, params=params,
        )
        assert via_api.engine == "spice-rbf"
        for probe in ("near_end", "far_end"):
            assert _rel_diff(direct.voltage(probe), via_api.waveform(probe)) <= 1e-12

    def test_fdtd1d_matches_run_fdtd1d_link(self, params, driver_model, receiver_model):
        from repro.core.cosim import LinkDescription
        from repro.experiments.fig4_rc_load import run_fdtd1d_link

        spec = SimulationSpec(
            kind="fdtd1d", duration=2e-9,
            stimulus=StimulusSpec(bit_pattern="010", bit_time=1e-9),
            link=LinkSpec(z0=131.0, delay=0.4e-9),
            engine=EngineOptions(n_cells=50),
        )
        models = _models(params, driver_model, receiver_model)
        via_api = run(spec, models=models)
        direct = run_fdtd1d_link(
            models,
            LinkDescription(bit_pattern="010", bit_time=1e-9, duration=2e-9, load="rc"),
            z_c=131.0, t_d=0.4e-9, n_cells=50,
        )
        for probe in ("near_end", "far_end"):
            assert _rel_diff(direct.voltage(probe), via_api.waveform(probe)) <= 1e-12

    def test_sweep_linear_matches_direct_sweep(self):
        from repro.sweep import Scenario, linear_link_sweep

        scenarios_spec = (
            ScenarioSpec(name="nom", bit_pattern="010"),
            ScenarioSpec(name="z100", bit_pattern="011", corner={"z0": 100.0}),
        )
        spec = SimulationSpec(
            kind="sweep", duration=3e-9, scenarios=scenarios_spec,
            engine=EngineOptions(dt=1e-11, sweep_family="linear"),
        )
        via_api = run(spec)
        direct = linear_link_sweep(
            [Scenario(name="nom", bit_pattern="010"),
             Scenario(name="z100", bit_pattern="011", corner={"z0": 100.0})],
            dt=1e-11, duration=3e-9,
        ).run()
        assert via_api.meta["n_scenarios"] == 2
        for name in ("nom", "z100"):
            for node in ("near", "far"):
                assert _rel_diff(
                    direct.voltage(name, node), via_api.waveform(f"{name}/{node}")
                ) <= 1e-12

    def test_sweep_rbf_matches_direct_sweep(self, params, driver_model, receiver_model):
        from repro.sweep import Scenario, rbf_link_sweep

        spec = SimulationSpec(
            kind="sweep", duration=2e-9,
            stimulus=StimulusSpec(bit_pattern="010", bit_time=1e-9),
            scenarios=(
                ScenarioSpec(name="nom", bit_pattern="010"),
                ScenarioSpec(name="z100", bit_pattern="010", corner={"z0": 100.0}),
            ),
            engine=EngineOptions(dt=2e-11, sweep_family="rbf"),
        )
        models = _models(params, driver_model, receiver_model)
        via_api = run(spec, models=models)
        from repro.sweep.links import RBFLinkSpec

        direct = rbf_link_sweep(
            [Scenario(name="nom", bit_pattern="010"),
             Scenario(name="z100", bit_pattern="010", corner={"z0": 100.0})],
            {None: (driver_model, receiver_model)},
            dt=2e-11, duration=2e-9,
            spec=RBFLinkSpec(bit_time=1e-9),
        ).run()
        for name in ("nom", "z100"):
            for node in ("near", "far"):
                assert _rel_diff(
                    direct.voltage(name, node), via_api.waveform(f"{name}/{node}")
                ) <= 1e-12

    def test_sweep_scenarios_inherit_stimulus_bit_pattern(self):
        # a scenario with a null bit_pattern runs the spec's stimulus
        # pattern, not a hard-coded fallback
        base = dict(
            kind="sweep", duration=3e-9,
            engine=EngineOptions(dt=1e-11, sweep_family="linear"),
        )
        inherited = run(SimulationSpec(
            stimulus=StimulusSpec(bit_pattern="0110", bit_time=1e-9),
            scenarios=(ScenarioSpec(name="s"),), **base,
        ))
        explicit = run(SimulationSpec(
            stimulus=StimulusSpec(bit_pattern="010", bit_time=1e-9),
            scenarios=(ScenarioSpec(name="s", bit_pattern="0110"),), **base,
        ))
        np.testing.assert_array_equal(
            inherited.waveform("s/far"), explicit.waveform("s/far")
        )

    @pytest.mark.slow
    def test_fdtd3d_matches_run_fdtd3d_link(self, params, driver_model, receiver_model):
        from repro.core.cosim import LinkDescription
        from repro.experiments.fig4_rc_load import run_fdtd3d_link
        from repro.structures.validation_line import ValidationLineStructure

        # bit_time well inside the window so the driver actually switches
        spec = SimulationSpec(
            kind="fdtd3d", duration=0.5e-9,
            stimulus=StimulusSpec(bit_pattern="010", bit_time=0.2e-9),
            structure=StructureSpec(scale=0.1),
        )
        models = _models(params, driver_model, receiver_model)
        via_api = run(spec, models=models)
        direct = run_fdtd3d_link(
            ValidationLineStructure.scaled(0.1),
            models,
            LinkDescription(bit_pattern="010", bit_time=0.2e-9, duration=0.5e-9, load="rc"),
        )
        assert via_api.engine == "fdtd3d-rbf"
        assert np.max(np.abs(via_api.waveform("near_end"))) > 0.1  # real switching
        for probe in ("near_end", "far_end"):
            assert _rel_diff(direct.voltage(probe), via_api.waveform(probe)) <= 1e-12


class TestGoldenJobs:
    def test_all_job_files_validate(self):
        paths = sorted(
            os.path.join(JOBS_DIR, name)
            for name in os.listdir(JOBS_DIR) if name.endswith(".json")
        )
        assert len(paths) >= 4
        kinds = set()
        for path in paths:
            spec = load_spec(path)
            kinds.add(spec.kind)
            # every stored job is in normalised form already
            with open(path) as handle:
                assert spec.to_dict() == json.load(handle)
        assert kinds == {"circuit", "fdtd1d", "fdtd3d", "sweep"}

    def test_linear_link_job_end_to_end(self):
        from repro.sweep import linear_link_sweep

        spec = load_spec(os.path.join(JOBS_DIR, "linear_link.json"))
        result = run(spec)
        direct = linear_link_sweep(
            [sc.to_scenario() for sc in spec.scenarios],
            dt=spec.engine.dt, duration=spec.duration,
        ).run()
        name = spec.scenarios[0].name
        assert _rel_diff(
            direct.voltage(name, "far"), result.waveform(f"{name}/far")
        ) <= 1e-12
        # the job is cache-addressable: the hash is stable across loads
        assert spec.content_hash() == load_spec(
            os.path.join(JOBS_DIR, "linear_link.json")
        ).content_hash()


class TestCLI:
    def _invoke(self, *args: str):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, env=_subprocess_env(), cwd=REPO_ROOT,
        )

    def test_list_engines(self):
        out = self._invoke("list-engines")
        assert out.returncode == 0, out.stderr
        for kind in ("circuit", "fdtd1d", "fdtd3d", "sweep"):
            assert kind in out.stdout

    def test_version_flag(self):
        import repro

        out = self._invoke("--version")
        assert out.returncode == 0
        assert repro.__version__ in out.stdout

    def test_describe(self):
        out = self._invoke("describe", os.path.join("examples", "jobs", "linear_link.json"))
        assert out.returncode == 0, out.stderr
        assert "content hash:" in out.stdout
        assert '"kind": "sweep"' in out.stdout

    def test_run_quick_writes_artifact(self, tmp_path):
        artifact = tmp_path / "out.json"
        out = self._invoke(
            "run", os.path.join("examples", "jobs", "linear_link.json"),
            "--quick", "--output", str(artifact),
        )
        assert out.returncode == 0, out.stderr
        with open(artifact) as handle:
            data = json.load(handle)
        assert data["waveforms"]
        assert all(len(wave) > 0 for wave in data["waveforms"].values())
        assert data["meta"]["spec_hash"]

    def test_invalid_job_exits_nonzero(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format_version": 1, "kind": "warp"}')
        out = self._invoke("run", str(bad))
        assert out.returncode == 2
        assert "error:" in out.stderr


class TestVersionSingleSourcing:
    def test_package_version_matches_pyproject(self):
        import repro

        tomllib = pytest.importorskip("tomllib")
        with open(os.path.join(REPO_ROOT, "pyproject.toml"), "rb") as handle:
            pyproject = tomllib.load(handle)
        assert repro.__version__ == pyproject["project"]["version"]

    def test_lazy_api_attribute(self):
        import repro

        assert repro.api.SimulationSpec is SimulationSpec
        with pytest.raises(AttributeError):
            repro.nonexistent_attribute


class TestPydocSurface:
    """``help()`` output is part of the public API surface (docs satellite)."""

    def test_pydoc_renders_top_level_package(self):
        out = subprocess.run(
            [sys.executable, "-m", "pydoc", "repro"],
            capture_output=True, text=True, env=_subprocess_env(), cwd=REPO_ROOT,
        )
        assert out.returncode == 0, out.stderr
        # the package docstring's subsystem map must survive into help()
        for subsystem in ("repro.api", "repro.sweep", "repro.resilience",
                          "repro.service", "docs/"):
            assert subsystem in out.stdout, f"{subsystem!r} missing from pydoc output"

    @pytest.mark.parametrize("module", ["repro.api", "repro.service"])
    def test_pydoc_renders_subpackages(self, module):
        out = subprocess.run(
            [sys.executable, "-m", "pydoc", module],
            capture_output=True, text=True, env=_subprocess_env(), cwd=REPO_ROOT,
        )
        assert out.returncode == 0, out.stderr
        assert "SimulationSpec" in out.stdout or "JobServer" in out.stdout
