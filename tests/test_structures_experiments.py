"""Tests of the structure builders and the experiment harness (fast configurations)."""

import numpy as np
import pytest

from repro.core.ports import ResistorTermination
from repro.experiments.devices import identified_reference_macromodels
from repro.experiments.fig2_stability import run_figure2
from repro.experiments.newton_iterations import run_newton_iteration_study
from repro.experiments.reporting import engine_agreement, format_table, sample_series
from repro.core.cosim import SimulationResult
from repro.structures.pcb import PCBStructure
from repro.structures.validation_line import ValidationLineStructure


class TestValidationLineStructure:
    def test_paper_dimensions(self):
        s = ValidationLineStructure.paper()
        assert (s.nx, s.ny, s.nz) == (180, 24, 23)
        assert s.mesh_size == pytest.approx(0.723e-3)

    def test_scaled_keeps_cross_section(self):
        s = ValidationLineStructure.scaled(0.25)
        assert s.ny == ValidationLineStructure.paper().ny
        assert s.nz == ValidationLineStructure.paper().nz
        assert s.strip_length_cells == 40

    def test_grid_has_two_strips_and_bridge_wires(self):
        s = ValidationLineStructure.scaled(0.2)
        grid = s.build_grid()
        # strips are tangential-PEC plates at the two z planes
        assert grid.pec_x[s.x_near + 1, s.y_port, s.k_bottom]
        assert grid.pec_x[s.x_near + 1, s.y_port, s.k_top]
        # bridge wires above the port edge at both ends
        assert grid.pec_z[s.x_near, s.y_port, s.k_bottom + 1]
        assert grid.pec_z[s.x_far, s.y_port, s.k_bottom + 1]
        # the port edge itself is not PEC
        assert not grid.pec_z[s.x_near, s.y_port, s.k_bottom]

    def test_port_site_positions(self):
        s = ValidationLineStructure.scaled(0.2)
        near = s.port_site("n", "near", ResistorTermination(50.0))
        far = s.port_site("f", "far", ResistorTermination(50.0))
        assert near.node[0] == s.x_near
        assert far.node[0] == s.x_far
        with pytest.raises(ValueError):
            s.port_site("x", "middle", ResistorTermination(50.0))

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            ValidationLineStructure.scaled(0.0)
        with pytest.raises(ValueError):
            ValidationLineStructure(margin_x=1)


class TestPCBStructure:
    def test_paper_dimensions(self):
        s = PCBStructure.paper()
        assert (s.nx, s.ny, s.nz) == (100, 100, 3)
        # 5 cm board
        assert s.nx * s.in_plane_cell == pytest.approx(0.05)

    def test_grid_has_ground_planes_strips_and_vias(self):
        s = PCBStructure.scaled(0.3)
        grid = s.build_grid()
        # metallisation covers the outer faces (tangential E masked)
        assert grid.pec_x[2, 3, 0]
        assert grid.pec_x[2, 3, s.nz]
        # dielectric everywhere
        np.testing.assert_allclose(grid.eps_r, 4.3)
        # innermost top strip and its via exist
        y_top = s.strip_y_positions()[1]
        x_bot = s.strip_x_positions()[1]
        assert grid.pec_x[s.margin + 1, y_top, s.k_top_strips]
        assert grid.pec_z[x_bot, y_top, s.k_bottom_strips]

    def test_port_sites(self):
        s = PCBStructure.scaled(0.3)
        drv = s.driver_port(ResistorTermination(50.0))
        rx = s.receiver_port(ResistorTermination(50.0))
        assert drv.axis == "z" and rx.axis == "z"
        assert drv.node[2] == s.k_top_strips
        assert rx.node[2] == 0
        assert rx.flip is True

    def test_validation(self):
        with pytest.raises(ValueError):
            PCBStructure(board_cells=10)
        with pytest.raises(ValueError):
            PCBStructure(board_cells=50, strip_length_cells=60)


class TestFigure2Experiment:
    def test_paper_criterion_reproduced(self):
        fig2 = run_figure2(taus=(0.25, 0.5, 1.0, 1.5))
        assert fig2.continuous_all_left_half_plane
        assert fig2.resampled_stable[0.25]
        assert fig2.resampled_stable[1.0]
        assert not fig2.resampled_stable[1.5]
        assert fig2.marching_bounded[0.5]
        assert not fig2.marching_bounded[1.5]

    def test_summary_rows_sorted(self):
        fig2 = run_figure2(taus=(1.0, 0.25))
        rows = fig2.summary_rows()
        assert rows[0][0] == 0.25
        assert rows[1][0] == 1.0


class TestNewtonIterationStudy:
    def test_max_iterations_matches_paper_claim(self, driver_model, receiver_model, params):
        from repro.experiments.devices import ReferenceMacromodels

        models = ReferenceMacromodels(driver=driver_model, receiver=receiver_model, params=params, source="library")
        study = run_newton_iteration_study(scale=0.15, duration=1.5e-9, models=models)
        # the paper reports at most 3 iterations at tol 1e-9; allow a small margin
        assert study.max_iterations["fdtd1d-rbf"] <= 4
        assert study.max_iterations["fdtd3d-rbf"] <= 4
        assert study.tolerance == pytest.approx(1e-9)
        assert all(count > 0 for count in study.histogram["fdtd1d-rbf"].values())


class TestReportingAndCaching:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_engine_agreement_identical_results(self):
        t = np.linspace(0, 1e-9, 50)
        res = SimulationResult(times=t, voltages={"near_end": np.sin(1e9 * t), "far_end": np.cos(1e9 * t)})
        metrics = engine_agreement(res, res)
        assert metrics["near_end"] == pytest.approx(0.0, abs=1e-15)

    def test_sample_series(self):
        t = np.linspace(0, 1e-9, 101)
        res = SimulationResult(times=t, voltages={"near_end": t * 1e9})
        out = sample_series(res, "near_end", [0.25e-9, 0.75e-9])
        np.testing.assert_allclose(out, [0.25, 0.75], atol=1e-6)

    def test_library_models_cached(self, params):
        a = identified_reference_macromodels(params, use_identification=False)
        b = identified_reference_macromodels(params, use_identification=False)
        assert a is b
        assert a.source == "library"
