"""Unit tests for the Gaussian RBF expansion and submodels."""

import numpy as np
import pytest

from repro.macromodel.rbf import GaussianRBFExpansion, RBFSubmodel


def _simple_expansion(dim=3, n_centers=4, beta=0.8, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_centers, dim))
    weights = rng.normal(size=n_centers)
    return GaussianRBFExpansion(centers=centers, weights=weights, beta=beta)


class TestGaussianRBFExpansion:
    def test_value_at_center_single_basis(self):
        exp_ = GaussianRBFExpansion(centers=[[1.0, 2.0]], weights=[3.0], beta=1.0)
        assert exp_(np.array([1.0, 2.0])) == pytest.approx(3.0)

    def test_decay_away_from_center(self):
        exp_ = GaussianRBFExpansion(centers=[[0.0]], weights=[1.0], beta=0.5)
        assert exp_(np.array([0.0])) > exp_(np.array([1.0])) > exp_(np.array([2.0])) > 0.0

    def test_batch_matches_single(self):
        exp_ = _simple_expansion()
        pts = np.random.default_rng(1).normal(size=(6, 3))
        batch = exp_(pts)
        singles = np.array([exp_(p) for p in pts])
        np.testing.assert_allclose(batch, singles)

    def test_gradient_matches_finite_difference(self):
        exp_ = _simple_expansion()
        x = np.array([0.3, -0.2, 0.4])
        grad = exp_.gradient(x)
        h = 1e-6
        for k in range(3):
            xp, xm = x.copy(), x.copy()
            xp[k] += h
            xm[k] -= h
            fd = (exp_(xp) - exp_(xm)) / (2 * h)
            assert grad[k] == pytest.approx(fd, rel=1e-5, abs=1e-8)

    def test_gradient_rejects_batch_input(self):
        exp_ = _simple_expansion()
        with pytest.raises(ValueError):
            exp_.gradient(np.zeros((2, 3)))

    def test_dimension_mismatch_raises(self):
        exp_ = _simple_expansion(dim=3)
        with pytest.raises(ValueError):
            exp_(np.zeros(4))

    def test_center_weight_count_mismatch(self):
        with pytest.raises(ValueError):
            GaussianRBFExpansion(centers=np.zeros((3, 2)), weights=np.zeros(2), beta=1.0)

    def test_non_positive_beta_rejected(self):
        with pytest.raises(ValueError):
            GaussianRBFExpansion(centers=np.zeros((1, 1)), weights=np.zeros(1), beta=0.0)

    def test_design_matrix_shape(self):
        exp_ = _simple_expansion(n_centers=5)
        pts = np.zeros((7, 3))
        assert exp_.design_matrix(pts).shape == (7, 5)


class TestRBFSubmodel:
    def _submodel(self, r=2):
        dim = 2 * r + 1
        exp_ = _simple_expansion(dim=dim, n_centers=6)
        return RBFSubmodel(expansion=exp_, dynamic_order=r, v_scale=1.8, i_scale=0.05)

    def test_dimension_consistency_enforced(self):
        exp_ = _simple_expansion(dim=4)
        with pytest.raises(ValueError):
            RBFSubmodel(expansion=exp_, dynamic_order=2)

    def test_current_scales_with_i_scale(self):
        r = 2
        exp_ = GaussianRBFExpansion(centers=np.zeros((1, 2 * r + 1)), weights=[1.0], beta=2.0)
        small = RBFSubmodel(exp_, r, v_scale=1.0, i_scale=0.01)
        large = RBFSubmodel(exp_, r, v_scale=1.0, i_scale=0.1)
        xv, xi = np.zeros(r), np.zeros(r)
        assert large.current(0.0, xv, xi) == pytest.approx(10 * small.current(0.0, xv, xi))

    def test_dcurrent_dv_matches_finite_difference(self):
        sub = self._submodel()
        xv = np.array([0.5, 0.2])
        xi = np.array([0.01, -0.02])
        v = 0.9
        h = 1e-7
        fd = (sub.current(v + h, xv, xi) - sub.current(v - h, xv, xi)) / (2 * h)
        assert sub.dcurrent_dv(v, xv, xi) == pytest.approx(fd, rel=1e-4, abs=1e-9)

    def test_current_batch_matches_loop(self):
        sub = self._submodel()
        rng = np.random.default_rng(3)
        v = rng.uniform(0, 1.8, 5)
        xv = rng.uniform(0, 1.8, (5, 2))
        xi = rng.uniform(-0.05, 0.05, (5, 2))
        batch = sub.current_batch(v, xv, xi)
        singles = [sub.current(v[k], xv[k], xi[k]) for k in range(5)]
        np.testing.assert_allclose(batch, singles)

    def test_regressor_shape_validation(self):
        sub = self._submodel(r=2)
        with pytest.raises(ValueError):
            sub.current(0.0, np.zeros(3), np.zeros(2))

    def test_bad_scales_rejected(self):
        exp_ = _simple_expansion(dim=5)
        with pytest.raises(ValueError):
            RBFSubmodel(exp_, 2, v_scale=0.0)
