"""Equivalence suite for the fast-path kernel layer (:mod:`repro.perf`).

Every engine carries a naive reference implementation (selected with
``fast=False`` / :func:`repro.perf.use_fastpath`) that serves as the
correctness oracle for the optimised kernels.  These tests assert that the
fast paths reproduce the reference results to well below 1e-12 relative —
for the MNA solver, the separable RBF evaluation and both FDTD steppers —
and that the cached-LU path is actually hit for purely linear circuits.
"""

import numpy as np
import pytest

from repro import perf
from repro.circuits.elements import Capacitor, Inductor, Resistor, VoltageSource
from repro.circuits.diode import Diode
from repro.circuits.netlist import GROUND, Circuit
from repro.circuits.rbf_element import MacromodelElement
from repro.circuits.tline import IdealTransmissionLine
from repro.circuits.transient import TransientOptions, TransientSolver
from repro.core.ports import MacromodelTermination, ResistiveSourceTermination
from repro.core.resampling import ResampledPortModel
from repro.fdtd.geometry import add_pec_plate
from repro.fdtd.grid import YeeGrid
from repro.fdtd.lumped import LumpedElementSite
from repro.fdtd.plane_wave import PlaneWaveSource
from repro.fdtd.solver1d import FDTD1DLine
from repro.fdtd.solver3d import FDTD3DSolver
from repro.macromodel.driver import LogicStimulus
from repro.macromodel.library import (
    ReferenceDeviceParameters,
    make_reference_driver_macromodel,
    make_reference_receiver_macromodel,
)
from repro.macromodel.rbf import GaussianRBFExpansion


REL_TOL = 1e-12


@pytest.fixture(scope="module")
def params():
    return ReferenceDeviceParameters()


@pytest.fixture(scope="module")
def driver_model(params):
    return make_reference_driver_macromodel(params, n_centers=60)


@pytest.fixture(scope="module")
def receiver_model(params):
    return make_reference_receiver_macromodel(params, n_centers=40)


def _assert_close(fast, ref, label, rel=REL_TOL):
    fast = np.asarray(fast)
    ref = np.asarray(ref)
    scale = max(1.0, float(np.max(np.abs(ref)))) if ref.size else 1.0
    err = float(np.max(np.abs(fast - ref))) if ref.size else 0.0
    assert err <= rel * scale, f"{label}: max |diff| {err:.3e} > {rel:.0e} * {scale:.3g}"


# -- MNA fast path ---------------------------------------------------------

def _linear_circuit():
    ckt = Circuit("rlc-link")
    ckt.add(VoltageSource("vin", "in", GROUND, lambda t: np.sin(2e9 * np.pi * t)))
    ckt.add(Resistor("rs", "in", "a", 50.0))
    ckt.add(Inductor("l1", "a", "b", 10e-9))
    ckt.add(Capacitor("c1", "b", GROUND, 2e-12))
    ckt.add(IdealTransmissionLine("tl", "b", GROUND, "out", GROUND, 75.0, 0.3e-9))
    ckt.add(Resistor("rl", "out", GROUND, 75.0))
    return ckt


def _run_linear(fast):
    solver = TransientSolver(
        _linear_circuit(), dt=5e-12, options=TransientOptions(fast=fast)
    )
    result = solver.run(3e-9)
    return solver, result


def test_mna_linear_equivalence_and_lu_cache():
    solver_fast, fast = _run_linear(True)
    solver_ref, ref = _run_linear(False)
    for node in ("a", "b", "out"):
        _assert_close(fast.voltage(node), ref.voltage(node), f"linear node {node}")
    _assert_close(
        fast.branch_current("l1"), ref.branch_current("l1"), "inductor current"
    )
    assert np.array_equal(fast.newton_iterations, ref.newton_iterations)
    # Purely linear circuit: the Jacobian is factorised exactly once and the
    # factorization is reused for every remaining step.
    stats = solver_fast.perf_stats
    n_steps = len(fast.newton_iterations) - 1
    assert stats["linear_only"] is True
    assert stats["factorizations"] == 1
    assert stats["cached_solves"] >= n_steps - 1
    assert solver_ref.perf_stats["mode"] == "reference"


def test_mna_nonlinear_equivalence(params):
    def build():
        ckt = Circuit("diode-clipper")
        ckt.add(VoltageSource("vin", "in", GROUND, lambda t: 2.5 * np.sin(1e9 * np.pi * t)))
        ckt.add(Resistor("rs", "in", "out", 200.0))
        ckt.add(Capacitor("cl", "out", GROUND, 1e-12))
        ckt.add(Diode("d1", "out", GROUND))
        ckt.add(Diode("d2", GROUND, "out"))
        return ckt

    runs = {}
    for fast in (True, False):
        solver = TransientSolver(build(), dt=10e-12, options=TransientOptions(fast=fast))
        runs[fast] = solver.run(4e-9)
    _assert_close(
        runs[True].voltage("out"), runs[False].voltage("out"), "diode clipper"
    )
    assert np.array_equal(runs[True].newton_iterations, runs[False].newton_iterations)


@pytest.mark.slow
def test_mna_macromodel_link_equivalence(params, driver_model, receiver_model):
    stimulus = LogicStimulus.from_pattern("010", 0.8e-9)

    def run(fast):
        ckt = Circuit("rbf-link")
        ckt.add(
            MacromodelElement(
                "drv", "near", GROUND, driver_model.bound(stimulus), 5e-12, fast=fast
            )
        )
        ckt.add(
            IdealTransmissionLine("tl", "near", GROUND, "far", GROUND, 131.0, 0.4e-9)
        )
        ckt.add(MacromodelElement("rx", "far", GROUND, receiver_model, 5e-12, fast=fast))
        solver = TransientSolver(ckt, 5e-12, options=TransientOptions(fast=fast))
        return solver.run(2.4e-9, record_nodes=["near", "far"])

    fast, ref = run(True), run(False)
    _assert_close(fast.voltage("near"), ref.voltage("near"), "rbf link near")
    _assert_close(fast.voltage("far"), ref.voltage("far"), "rbf link far")
    assert np.array_equal(fast.newton_iterations, ref.newton_iterations)


@pytest.mark.parametrize("polarity", ["n", "p"])
def test_mosfet_stamp_fast_matches_stamp(polarity):
    """The inlined level-1 math in ``stamp_fast`` must track ``stamp`` exactly."""
    from repro.circuits.elements import StampContext
    from repro.circuits.mosfet import Mosfet

    ckt = Circuit("mos")
    mos = Mosfet("m1", "d", "g", "s", polarity=polarity, k=0.06, vt=0.4, lam=0.05)
    ckt.add(mos)
    ckt.add(Resistor("rd", "d", GROUND, 1e3))
    ckt.add(Resistor("rg", "g", GROUND, 1e3))
    ckt.add(Resistor("rs2", "s", GROUND, 1e3))
    compiled = ckt.compile()
    ctx = StampContext(compiled, 1e-12, 0.0, "trapezoidal")
    mos.prepare_fast(compiled)
    n = compiled.n_unknowns
    rng = np.random.default_rng(polarity == "p")
    for _ in range(500):
        x = rng.uniform(-2.5, 2.5, size=n)
        a_ref, rhs_ref = np.zeros((n, n)), np.zeros(n)
        a_fast, rhs_fast = np.zeros((n, n)), np.zeros(n)
        mos.stamp(a_ref, rhs_ref, x, ctx)
        mos.stamp_fast(a_fast, rhs_fast, x, ctx)
        np.testing.assert_array_equal(a_fast, a_ref)
        np.testing.assert_array_equal(rhs_fast, rhs_ref)


# -- RBF separable evaluation ---------------------------------------------

def test_gaussian_basis_gram_matches_broadcast():
    rng = np.random.default_rng(3)
    expansion = GaussianRBFExpansion(
        centers=rng.normal(size=(40, 5)), weights=rng.normal(size=40), beta=0.4
    )
    pts = rng.normal(size=(100, 5))
    _assert_close(
        expansion.basis(pts), expansion._basis_reference(pts), "gram basis", rel=1e-13
    )
    single = expansion.basis(pts[0])
    assert single.shape == (40,)
    _assert_close(single, expansion._basis_reference(pts[0]), "gram basis single", rel=1e-13)


@pytest.mark.parametrize("kind", ["driver", "receiver"])
def test_separable_port_evaluation_matches_naive(kind, driver_model, receiver_model):
    model = (
        driver_model.bound(LogicStimulus.from_pattern("010", 1e-9))
        if kind == "driver"
        else receiver_model
    )
    rng = np.random.default_rng(7)
    fast_port = ResampledPortModel(model, 10e-12, fast=True)
    ref_port = ResampledPortModel(model, 10e-12, fast=False)
    assert fast_port._fast is not None
    assert ref_port._fast is None
    for step in range(60):
        t = fast_port.time
        v = float(rng.uniform(-0.5, 2.3))
        i_fast, g_fast = fast_port.current_and_dcurrent(v, t)
        i_ref = ref_port.current(v, t)
        g_ref = ref_port.dcurrent_dv(v, t)
        assert abs(i_fast - i_ref) <= 1e-12 * max(1.0, abs(i_ref))
        assert abs(g_fast - g_ref) <= 1e-12 * max(1.0, abs(g_ref))
        fast_port.commit(v, t)
        ref_port.commit(v, t)
        _assert_close(fast_port.x_i, ref_port.x_i, "regressor state", rel=1e-12)


# -- FDTD fast paths -------------------------------------------------------

def _small_3d_solver(fast, with_wave, receiver_model):
    grid = YeeGrid(14, 10, 6, dx=1e-3)
    grid.set_box_epsr((2, 12), (2, 8), (0, 2), 3.5)
    add_pec_plate(grid, "z", 1, (2, 12), (2, 8))
    plane_wave = (
        PlaneWaveSource.paper_figure7(amplitude=500.0, bandwidth_hz=12e9)
        if with_wave
        else None
    )
    solver = FDTD3DSolver(grid, courant_safety=0.9, fast=fast)
    if plane_wave is not None:
        solver.set_plane_wave(plane_wave)
    site_r = LumpedElementSite(
        "load", "z", (4, 4, 2), ResistiveSourceTermination(50.0)
    )
    site_m = LumpedElementSite(
        "rx", "z", (9, 6, 2),
        MacromodelTermination.from_model(receiver_model, 1.5e-12, fast=fast),
    )
    solver.add_lumped_element(site_r)
    solver.add_lumped_element(site_m)
    return solver, site_r, site_m


@pytest.mark.slow
@pytest.mark.parametrize("with_wave", [True, False])
def test_fdtd3d_fast_equivalence(with_wave, receiver_model):
    results = {}
    for fast in (True, False):
        with perf.use_fastpath(fast):
            solver, site_r, site_m = _small_3d_solver(fast, with_wave, receiver_model)
            if not with_wave:
                # Drive the grid somehow: a Thevenin source on the resistor site.
                site_r.termination.source = lambda t: np.exp(
                    -(((t - 40e-12) / 15e-12) ** 2)
                )
            solver.run(n_steps=60)
            results[fast] = (
                site_r.voltages.copy(),
                site_m.voltages.copy(),
                site_m.currents.copy(),
                solver.ex.copy(),
                solver.ez.copy(),
                solver.newton_stats.total_iterations,
            )
    for fast_arr, ref_arr, label in zip(
        results[True], results[False],
        ("site_r v", "site_m v", "site_m i", "ex", "ez", "newton iters"),
    ):
        _assert_close(fast_arr, ref_arr, f"fdtd3d {label}")


@pytest.mark.slow
def test_fdtd1d_fast_equivalence(driver_model, receiver_model):
    stimulus = LogicStimulus.from_pattern("010", 1.2e-9)

    def run(fast):
        dt_model = driver_model.sampling_time
        line = FDTD1DLine(
            z0=131.0,
            delay=0.4e-9,
            near_termination=MacromodelTermination.from_model(
                driver_model.bound(stimulus), 0.4e-9 / 40, fast=fast
            ),
            far_termination=MacromodelTermination.from_model(
                receiver_model, 0.4e-9 / 40, fast=fast
            ),
            n_cells=40,
            fast=fast,
        )
        assert line.dt <= dt_model
        return line.run(1.6e-9)

    fast, ref = run(True), run(False)
    for key in ("near_end", "far_end"):
        _assert_close(fast.voltages[key], ref.voltages[key], f"fdtd1d {key}")
        _assert_close(fast.currents[key], ref.currents[key], f"fdtd1d {key} current")
    assert fast.newton_stats.total_iterations == ref.newton_stats.total_iterations


# -- identification disk cache ---------------------------------------------

def test_identification_disk_cache_roundtrip(
    tmp_path, monkeypatch, params, driver_model, receiver_model
):
    from repro.experiments import devices as dev

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    path = dev.identification_cache_path(params, 10, 0)
    assert path is not None and str(tmp_path) in path
    # Different identification parameters must map to different entries.
    assert path != dev.identification_cache_path(params, 11, 0)
    assert path != dev.identification_cache_path(params, 10, 1)

    models = dev.ReferenceMacromodels(
        driver=driver_model, receiver=receiver_model, params=params
    )
    dev._store_identified_to_disk(path, models)
    loaded = dev._load_identified_from_disk(path, params)
    assert loaded is not None
    assert loaded.source == "identified (disk cache)"
    np.testing.assert_array_equal(
        loaded.driver.submodel_up.expansion.weights,
        models.driver.submodel_up.expansion.weights,
    )
    np.testing.assert_array_equal(
        loaded.receiver.protection_up.expansion.centers,
        models.receiver.protection_up.expansion.centers,
    )

    # A corrupt cache entry falls back gracefully (returns None).
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    assert dev._load_identified_from_disk(path, params) is None

    # The cache can be disabled through the environment.
    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    assert dev.identification_cache_path(params, 10, 0) is None


# -- global switch ---------------------------------------------------------

def test_use_fastpath_context_restores_default():
    before = perf.fastpath_default()
    with perf.use_fastpath(not before):
        assert perf.fastpath_default() is (not before)
    assert perf.fastpath_default() is before
