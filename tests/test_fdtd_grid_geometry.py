"""Tests for the Yee grid, geometry helpers, Courant limit and plane wave."""

import numpy as np
import pytest

from repro.fdtd.constants import C0, EPS0, ETA0, MU0
from repro.fdtd.courant import courant_number, courant_time_step
from repro.fdtd.geometry import add_pec_box, add_pec_plate, add_pec_wire, add_via
from repro.fdtd.grid import YeeGrid
from repro.fdtd.plane_wave import PlaneWaveSource
from repro.waveforms.signals import GaussianPulse


class TestConstants:
    def test_relations(self):
        assert C0 == pytest.approx(1.0 / np.sqrt(EPS0 * MU0))
        assert ETA0 == pytest.approx(np.sqrt(MU0 / EPS0))
        assert ETA0 == pytest.approx(376.73, rel=1e-4)


class TestCourant:
    def test_cubic_cell_limit(self):
        d = 1e-3
        dt = courant_time_step(d, safety=1.0)
        assert dt == pytest.approx(d / (C0 * np.sqrt(3.0)))

    def test_safety_factor(self):
        assert courant_time_step(1e-3, safety=0.5) == pytest.approx(
            0.5 * courant_time_step(1e-3, safety=1.0)
        )

    def test_courant_number(self):
        d = 1e-3
        dt = courant_time_step(d, safety=1.0)
        assert courant_number(dt, d) == pytest.approx(1.0)
        assert courant_number(0.5 * dt, d) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            courant_time_step(-1.0)
        with pytest.raises(ValueError):
            courant_time_step(1e-3, safety=1.5)


class TestYeeGrid:
    def test_field_shapes(self):
        g = YeeGrid(4, 5, 6, 1e-3)
        assert g.e_shape("x") == (4, 6, 7)
        assert g.e_shape("y") == (5, 5, 7)
        assert g.e_shape("z") == (5, 6, 6)
        assert g.h_shape("x") == (5, 5, 6)
        assert g.h_shape("y") == (4, 6, 6)
        assert g.h_shape("z") == (4, 5, 7)

    def test_edge_permittivity_uniform(self):
        g = YeeGrid(3, 3, 3, 1e-3)
        for axis in "xyz":
            eps = g.edge_permittivity(axis)
            assert eps.shape == g.e_shape(axis)
            np.testing.assert_allclose(eps, EPS0)

    def test_edge_permittivity_interface_average(self):
        g = YeeGrid(4, 4, 4, 1e-3)
        g.set_box_epsr((0, 4), (0, 4), (0, 2), 4.0)
        eps_x = g.edge_permittivity("x")
        # an Ex edge at the dielectric interface (k=2) averages 4.0 and 1.0
        assert eps_x[1, 2, 2] == pytest.approx(2.5 * EPS0)
        # deep inside the dielectric
        assert eps_x[1, 2, 1] == pytest.approx(4.0 * EPS0)
        # in the air region
        assert eps_x[1, 2, 3] == pytest.approx(EPS0)

    def test_set_box_epsr_validation(self):
        g = YeeGrid(4, 4, 4, 1e-3)
        with pytest.raises(ValueError):
            g.set_box_epsr((0, 5), (0, 4), (0, 4), 4.0)
        with pytest.raises(ValueError):
            g.set_box_epsr((0, 4), (0, 4), (0, 4), -1.0)

    def test_edge_coordinates_offsets(self):
        g = YeeGrid(3, 3, 3, 1e-3, 2e-3, 3e-3)
        x, y, z = g.edge_coordinates("x")
        assert x[0, 0, 0] == pytest.approx(0.5e-3)
        assert y[0, 1, 0] == pytest.approx(2e-3)
        assert z[0, 0, 1] == pytest.approx(3e-3)
        xm, ym, zm = g.edge_coordinates("z", mask=np.ones(g.e_shape("z"), dtype=bool))
        assert xm.ndim == 1 and xm.size == np.prod(g.e_shape("z"))

    def test_cell_cross_section_and_length(self):
        g = YeeGrid(3, 3, 3, 1e-3, 2e-3, 3e-3)
        assert g.edge_length("y") == 2e-3
        assert g.cell_cross_section("y") == pytest.approx(3e-6)

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            YeeGrid(1, 5, 5, 1e-3)


class TestGeometry:
    def test_plate_normal_z_masks_tangential_edges(self):
        g = YeeGrid(6, 6, 6, 1e-3)
        add_pec_plate(g, "z", 3, (1, 5), (2, 4))
        assert g.pec_x[2, 3, 3]
        assert g.pec_y[3, 2, 3]
        assert not g.pec_z.any()
        # outside the plate
        assert not g.pec_x[0, 3, 3]

    def test_plate_other_normals(self):
        g = YeeGrid(6, 6, 6, 1e-3)
        add_pec_plate(g, "x", 2, (1, 4), (1, 4))
        assert g.pec_y[2, 2, 2]
        assert g.pec_z[2, 2, 2]
        g2 = YeeGrid(6, 6, 6, 1e-3)
        add_pec_plate(g2, "y", 2, (1, 4), (1, 4))
        assert g2.pec_z[2, 2, 2]
        assert g2.pec_x[2, 2, 2]

    def test_wire_and_via(self):
        g = YeeGrid(6, 6, 6, 1e-3)
        add_pec_wire(g, "y", (2, 1, 3), 3)
        assert g.pec_y[2, 1, 3] and g.pec_y[2, 3, 3]
        assert not g.pec_y[2, 4, 3]
        add_via(g, 4, 4, (1, 4))
        assert g.pec_z[4, 4, 1] and g.pec_z[4, 4, 3]

    def test_box(self):
        g = YeeGrid(6, 6, 6, 1e-3)
        add_pec_box(g, (1, 3), (1, 3), (1, 3))
        assert g.pec_x[1, 2, 2]
        assert g.pec_z[2, 2, 1]

    def test_invalid_ranges(self):
        g = YeeGrid(6, 6, 6, 1e-3)
        with pytest.raises(ValueError):
            add_pec_plate(g, "z", 3, (3, 3), (1, 2))
        with pytest.raises(ValueError):
            add_pec_wire(g, "q", (0, 0, 0), 1)
        with pytest.raises(ValueError):
            add_via(g, 1, 1, (3, 3))


class TestPlaneWave:
    def test_paper_direction_and_polarisation(self):
        src = PlaneWaveSource.paper_figure7()
        # theta=90, phi=180: arrival from -x, propagation along +x
        np.testing.assert_allclose(src.k_hat, [1.0, 0.0, 0.0], atol=1e-12)
        # theta polarisation at theta=90 is -z
        np.testing.assert_allclose(src.p_hat, [0.0, 0.0, -1.0], atol=1e-12)

    def test_retardation_delays_downstream_points(self):
        pulse = GaussianPulse.from_bandwidth(1.0, 5e9)
        src = PlaneWaveSource(90.0, 180.0, pulse, amplitude=1.0)
        g = YeeGrid(10, 10, 10, 1e-2)
        src.bind(g)
        t = pulse.t_center  # peak reaches the upstream corner at this time
        e_up = src.e_field("z", np.array(0.0), np.array(0.0), np.array(0.0), t)
        e_down = src.e_field("z", np.array(0.09), np.array(0.0), np.array(0.0), t)
        assert abs(e_up) > abs(e_down)

    def test_zero_component_along_unpolarised_axis(self):
        src = PlaneWaveSource.paper_figure7()
        out = src.e_field("y", np.zeros(3), np.zeros(3), np.zeros(3), 1e-9)
        np.testing.assert_allclose(out, 0.0)

    def test_amplitude_scaling(self):
        pulse = GaussianPulse.from_bandwidth(1.0, 9.2e9)
        src = PlaneWaveSource(90.0, 180.0, pulse, amplitude=2000.0)
        g = YeeGrid(4, 4, 4, 1e-3)
        src.bind(g)
        value = src.e_field("z", np.array(0.0), np.array(0.0), np.array(0.0), pulse.t_center)
        assert abs(value) == pytest.approx(2000.0, rel=1e-6)

    def test_derivative_matches_finite_difference(self):
        pulse = GaussianPulse.from_bandwidth(1.0, 9.2e9)
        src = PlaneWaveSource(90.0, 180.0, pulse, amplitude=1.0)
        g = YeeGrid(4, 4, 4, 1e-3)
        src.bind(g)
        x = np.array(1e-3)
        y = np.array(0.0)
        z = np.array(0.0)
        t = pulse.t_center * 0.8
        h = 1e-14
        fd = (src.e_field("z", x, y, z, t + h) - src.e_field("z", x, y, z, t - h)) / (2 * h)
        assert src.de_field_dt("z", x, y, z, t) == pytest.approx(fd, rel=1e-3)

    def test_phi_polarisation(self):
        pulse = GaussianPulse.from_bandwidth(1.0, 5e9)
        src = PlaneWaveSource(90.0, 0.0, pulse, polarization="phi")
        np.testing.assert_allclose(src.p_hat, [0.0, 1.0, 0.0], atol=1e-12)

    def test_invalid_polarisation(self):
        with pytest.raises(ValueError):
            PlaneWaveSource(90.0, 0.0, lambda t: 0.0, polarization="circular")
