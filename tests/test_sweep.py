"""Equivalence and bookkeeping tests of the batched scenario-sweep subsystem.

The contract of :mod:`repro.sweep` is that batching changes *where* the
arithmetic happens, never *what* is computed: batched sweeps must match
independent per-scenario transients to 1e-12 relative (they are in fact
bit-identical on this machine), while sharing one static assembly — and,
for linear circuits, exactly one LU factorization — across the batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.transient import TransientOptions
from repro.macromodel.library import make_reference_driver_macromodel
from repro.sweep import (
    Scenario,
    eye_report,
    linear_link_sweep,
    rbf_link_sweep,
)

REL_TOL = 1e-12


def _assert_sweeps_match(batched, sequential, nodes=("near", "far")):
    for scenario in batched.scenarios:
        for node in nodes:
            a = batched.voltage(scenario.name, node)
            b = sequential.voltage(scenario.name, node)
            scale = max(np.max(np.abs(b)), 1e-30)
            err = np.max(np.abs(a - b)) / scale
            assert err <= REL_TOL, f"{scenario.name}/{node}: rel err {err:.3e}"


def _pattern_scenarios(n=8):
    return [
        Scenario(
            name=f"p{k}",
            bit_pattern=format(k, "03b"),
            drive_strength=1.0 + 0.05 * k,
        )
        for k in range(n)
    ]


class TestLinearSweep:
    def test_matches_sequential_with_one_factorization(self):
        sweep = linear_link_sweep(_pattern_scenarios(8), dt=1e-11, duration=4e-9)
        batched = sweep.run()
        sequential = sweep.run_sequential()

        _assert_sweeps_match(batched, sequential)
        stats = batched.perf_stats
        # One static group, factored exactly once for the whole batch.
        assert stats["static_groups"] == 1
        assert stats["shared_factorizations"] == 1
        assert stats["static_reuses"] == 7
        # Every scenario is linear, so every step is one block solve.
        assert len(stats["direct_linear_scenarios"]) == 8
        assert stats["block_solves"] == batched.times.size - 1

    def test_corner_scenarios_split_static_groups(self):
        scenarios = [
            Scenario(name="nom", bit_pattern="010"),
            Scenario(name="nom2", bit_pattern="011"),
            Scenario(name="weak", bit_pattern="010", corner={"load_resistance": 150.0}),
            Scenario(name="weak2", bit_pattern="011", corner={"load_resistance": 150.0}),
        ]
        sweep = linear_link_sweep(scenarios, dt=1e-11, duration=3e-9)
        batched = sweep.run()
        sequential = sweep.run_sequential()

        _assert_sweeps_match(batched, sequential)
        stats = batched.perf_stats
        assert stats["static_groups"] == 2
        assert stats["shared_factorizations"] == 2
        assert stats["static_reuses"] == 2
        # The corner actually changes the answer.
        nom = batched.voltage("nom", "far")
        weak = batched.voltage("weak", "far")
        assert np.max(np.abs(nom - weak)) > 1e-3

    def test_reference_path_lockstep_matches_sequential(self):
        options = TransientOptions(fast=False)
        sweep = linear_link_sweep(
            _pattern_scenarios(3), dt=2e-11, duration=2e-9, options=options
        )
        batched = sweep.run()
        sequential = sweep.run_sequential()
        _assert_sweeps_match(batched, sequential)
        assert batched.perf_stats["mode"] == "reference"


class TestRBFSweep:
    def test_matches_sequential_with_batched_basis_evals(
        self, params, driver_model, receiver_model
    ):
        scenarios = [
            Scenario(name=f"r{k}", bit_pattern=pattern)
            for k, pattern in enumerate(["010", "0110", "0101", "0011"])
        ]
        sweep = rbf_link_sweep(
            scenarios, {None: (driver_model, receiver_model)}, dt=1e-11, duration=3e-9
        )
        batched = sweep.run()
        sequential = sweep.run_sequential()

        _assert_sweeps_match(batched, sequential)
        stats = batched.perf_stats
        assert stats["batched_port_groups"] == 2  # driver group + receiver group
        assert stats["batched_rbf_evals"] > 0
        assert stats["static_reuses"] == 3

    def test_device_variants_batch_within_their_group(
        self, params, driver_model, receiver_model
    ):
        variant = make_reference_driver_macromodel(params, n_centers=40, seed=7)
        scenarios = [
            Scenario(name="a0", bit_pattern="010"),
            Scenario(name="a1", bit_pattern="011"),
            Scenario(name="b0", bit_pattern="010", device="variant"),
            Scenario(name="b1", bit_pattern="011", device="variant"),
        ]
        devices = {
            None: (driver_model, receiver_model),
            "variant": (variant, receiver_model),
        }
        sweep = rbf_link_sweep(scenarios, devices, dt=1e-11, duration=2e-9)
        batched = sweep.run()
        sequential = sweep.run_sequential()

        _assert_sweeps_match(batched, sequential)
        # Two driver families + one shared receiver family.
        assert batched.perf_stats["batched_port_groups"] == 3
        # The variant device actually changes the waveform (it approximates
        # the same physical driver, so the difference is small but real).
        a = batched.voltage("a0", "near")
        b = batched.voltage("b0", "near")
        assert np.max(np.abs(a - b)) > 1e-5

    def test_rc_corner_scenarios_mix_with_receiver_scenarios(
        self, params, driver_model, receiver_model
    ):
        scenarios = [
            Scenario(name="rx", bit_pattern="010"),
            Scenario(name="rx2", bit_pattern="001"),
            Scenario(name="rc", bit_pattern="010", corner={"load_resistance": 500.0}),
        ]
        sweep = rbf_link_sweep(
            scenarios, {None: (driver_model, receiver_model)}, dt=1e-11, duration=2e-9
        )
        batched = sweep.run()
        sequential = sweep.run_sequential()
        _assert_sweeps_match(batched, sequential)
        assert batched.perf_stats["static_groups"] == 2


class TestMixedStaticGroup:
    def test_linear_members_of_mixed_group_share_one_factorization(self):
        """Linear scenarios sharing statics with a nonlinear one still share the LU."""
        from repro.circuits.diode import Diode
        from repro.sweep.engine import CircuitSweep
        from repro.sweep.links import LinearLinkSpec

        spec = LinearLinkSpec()

        def build(scenario):
            circuit = spec.build(scenario)
            if scenario.device == "clamped":
                # A diode is a dynamic element: same static stamps, nonlinear run.
                circuit.add(Diode("dclamp", "far", "0"))
            return circuit

        scenarios = [
            Scenario(name="lin0", bit_pattern="010", static_group="g"),
            Scenario(name="lin1", bit_pattern="011", static_group="g"),
            Scenario(name="clamp", bit_pattern="010", device="clamped", static_group="g"),
        ]
        sweep = CircuitSweep(
            build, scenarios, dt=1e-11, duration=2e-9,
            record_nodes=["near", "far"], record_branches=[],
        )
        batched = sweep.run()
        sequential = sweep.run_sequential()
        _assert_sweeps_match(batched, sequential)

        stats = batched.perf_stats
        # Mixed group: no direct block-solve path, but still one shared
        # static assembly and exactly one LU factorization across the two
        # linear members (the second picks the factors up lazily).
        assert stats["static_groups"] == 1
        assert stats["direct_linear_scenarios"] == []
        assert stats["shared_factorizations"] == 1
        per_scenario = stats["per_scenario"]
        linear_factorizations = sum(
            per_scenario[name]["factorizations"] for name in ("lin0", "lin1")
        )
        assert linear_factorizations == 1
        assert per_scenario["lin0"]["linear_only"] is True
        assert per_scenario["clamp"]["linear_only"] is False


class TestSweepResultAndReport:
    def test_eye_report_identifies_worst_corner(self):
        scenarios = [
            Scenario(name="strong", bit_pattern="0101101", drive_strength=1.0),
            Scenario(name="weak", bit_pattern="0101101", drive_strength=0.45),
        ]
        sweep = linear_link_sweep(scenarios, dt=1e-11, duration=16e-9)
        result = sweep.run()

        report = eye_report(result, "far", 2e-9, low=0.0, high=1.8, t_start=2e-9)
        assert {row.scenario for row in report.rows} == {"strong", "weak"}
        assert report.worst_height.scenario == "weak"
        strong = next(r for r in report.rows if r.scenario == "strong")
        weak = next(r for r in report.rows if r.scenario == "weak")
        assert strong.eye_height > weak.eye_height >= 0.0

        payload = report.to_dict()
        assert payload["worst_height_scenario"] == "weak"
        text = report.format()
        assert "worst eye height" in text and "weak" in text

    def test_eye_report_pinned_non_integer_ratio(self):
        # Pins eye_report numbers at a non-integer bit_time/dt ratio
        # (2e-9 / 3e-11 = 66.67) after the PR-10 eye.py folding fixes.
        # Before them the same sweep folded at the silently rounded
        # period 2.01e-9 and dropped a trace (6 of 7), reading
        # strong: height 1.997797, width 1470 ps
        # weak:   height 0.138226, width  630 ps
        # — the weak width under-read by ~40 % because the boundary-
        # centred part of the clear arc was split off, and heights were
        # measured against drifted traces.
        scenarios = [
            Scenario(name="strong", bit_pattern="0101101", drive_strength=1.0),
            Scenario(name="weak", bit_pattern="0101101", drive_strength=0.45),
        ]
        sweep = linear_link_sweep(scenarios, dt=3e-11, duration=16e-9)
        result = sweep.run()
        report = eye_report(result, "far", 2e-9, low=0.0, high=1.8, t_start=2e-9)

        strong = next(r for r in report.rows if r.scenario == "strong")
        weak = next(r for r in report.rows if r.scenario == "weak")
        eye = result.eye("strong", "far", 2e-9, t_start=2e-9)
        assert eye.bit_time == 2e-9  # exactly as requested, not 67 * dt
        assert eye.n_traces == 7
        assert strong.eye_height == pytest.approx(1.997797, abs=1e-5)
        assert strong.eye_width == pytest.approx(1910e-12, abs=1e-14)
        assert weak.eye_height == pytest.approx(0.136825, abs=1e-5)
        assert weak.eye_width == pytest.approx(1070e-12, abs=1e-14)

    def test_result_accessors_and_errors(self):
        scenarios = [Scenario(name="only", bit_pattern="010")]
        sweep = linear_link_sweep(scenarios, dt=1e-11, duration=2e-9)
        result = sweep.run()
        assert result.n_scenarios == 1
        assert result.scenario("only").bit_pattern == "010"
        assert result.voltage("only", "far").shape == result.times.shape
        assert result.amortised_wall_time() <= result.wall_time + 1e-12
        with pytest.raises(KeyError):
            result.result("missing")
        with pytest.raises(KeyError):
            result.scenario("missing")

    def test_duplicate_scenario_names_rejected(self):
        scenarios = [Scenario(name="x"), Scenario(name="x")]
        with pytest.raises(ValueError, match="unique"):
            linear_link_sweep(scenarios)

    def test_eye_feeds_waveforms_eye(self):
        scenarios = [Scenario(name="s", bit_pattern="01010101")]
        sweep = linear_link_sweep(scenarios, dt=1e-11, duration=16e-9)
        result = sweep.run()
        eye = result.eye("s", "far", 2e-9, t_start=2e-9)
        assert eye.n_traces >= 6
        assert eye.bit_time == pytest.approx(2e-9, rel=1e-9)


class TestBatchedFDTD3DPorts:
    """Port batching in the 3-D solver (same lockstep machinery, field side)."""

    @staticmethod
    def _run(batch_ports, driver_model, receiver_model):
        from repro.core.ports import MacromodelTermination, ResistiveSourceTermination
        from repro.fdtd.grid import YeeGrid
        from repro.fdtd.lumped import LumpedElementSite
        from repro.fdtd.solver3d import FDTD3DSolver
        from repro.macromodel.driver import LogicStimulus
        from repro.waveforms.signals import TrapezoidalPulse

        grid = YeeGrid(nx=10, ny=10, nz=8, dx=1e-3, dy=1e-3, dz=1e-3)
        solver = FDTD3DSolver(grid, batch_ports=batch_ports)
        dt = solver.dt
        bound = driver_model.bound(LogicStimulus.from_pattern("01", 1e-9))
        source = TrapezoidalPulse(
            low=0.0, high=1.5, t_start=50 * dt, rise_time=100 * dt,
            width=300 * dt, fall_time=100 * dt,
        )
        solver.add_lumped_element(
            LumpedElementSite("src", "z", (3, 3, 3), ResistiveSourceTermination(50.0, source))
        )
        solver.add_lumped_element(
            LumpedElementSite("rx1", "z", (6, 3, 3), MacromodelTermination.from_model(receiver_model, dt))
        )
        solver.add_lumped_element(
            LumpedElementSite(
                "rx2", "z", (6, 6, 3), MacromodelTermination.from_model(receiver_model, dt),
                flip=True,
            )
        )
        solver.add_lumped_element(
            LumpedElementSite("drv", "z", (3, 6, 3), MacromodelTermination.from_model(bound, dt))
        )
        solver.run(n_steps=200)
        return solver

    def test_batched_ports_match_sequential(self, driver_model, receiver_model):
        batched = self._run(True, driver_model, receiver_model)
        solo = self._run(False, driver_model, receiver_model)

        # The two receiver ports share a model (one flipped): one group.
        assert len(batched._site_groups) == 1
        assert len(batched._site_groups[0][0]) == 2
        assert len(solo._site_groups) == 0

        for site_b, site_s in zip(batched.sites, solo.sites):
            scale = max(np.max(np.abs(site_s.voltages)), 1e-30)
            err = np.max(np.abs(site_b.voltages - site_s.voltages)) / scale
            assert err <= REL_TOL, f"site {site_b.name}: rel err {err:.3e}"
            err_i = np.max(np.abs(site_b.currents - site_s.currents)) / max(
                np.max(np.abs(site_s.currents)), 1e-30
            )
            assert err_i <= REL_TOL, f"site {site_b.name} current: rel err {err_i:.3e}"
        assert (
            batched.newton_stats.total_iterations == solo.newton_stats.total_iterations
        )
