"""Tests for the Newton solver, the termination abstraction and the hybrid cell update."""

import numpy as np
import pytest

from repro.core.cosim import LinkDescription, SimulationResult
from repro.core.lumped_rbf import CellCoefficients, HybridCellUpdate
from repro.core.newton import NewtonOptions, NewtonStats, newton_solve_scalar
from repro.core.ports import (
    MacromodelTermination,
    OpenTermination,
    ParallelRCTermination,
    ResistorTermination,
    ResistiveSourceTermination,
)
from repro.fdtd.constants import EPS0
from repro.macromodel.driver import LogicStimulus


class TestNewton:
    def test_linear_equation_single_iteration(self):
        res = newton_solve_scalar(lambda x: 2 * x - 4, lambda x: 2.0, x0=0.0)
        assert res.converged
        assert res.x == pytest.approx(2.0)
        assert res.iterations == 1

    def test_cubic_root(self):
        res = newton_solve_scalar(lambda x: x**3 - 8, lambda x: 3 * x**2, x0=3.0)
        assert res.converged
        assert res.x == pytest.approx(2.0, rel=1e-8)

    def test_already_converged_zero_iterations(self):
        res = newton_solve_scalar(lambda x: 0.0, lambda x: 1.0, x0=5.0)
        assert res.iterations == 0
        assert res.converged

    def test_iteration_cap_and_failure_flag(self):
        opts = NewtonOptions(max_iterations=3)
        res = newton_solve_scalar(lambda x: np.cos(x) + 2, lambda x: -np.sin(x) + 1e-3, 0.0, opts)
        assert not res.converged
        assert res.iterations == 3

    def test_max_step_damping(self):
        opts = NewtonOptions(max_step=0.5, max_iterations=200)
        res = newton_solve_scalar(lambda x: x - 10, lambda x: 1.0, 0.0, opts)
        # converges despite the per-iteration step cap, taking ~ 10 / 0.5 steps
        assert res.converged
        assert res.x == pytest.approx(10.0)
        assert res.iterations >= 20

    def test_stats_accumulation_and_merge(self):
        stats = NewtonStats()
        newton_solve_scalar(lambda x: x - 1, lambda x: 1.0, 0.0, stats=stats)
        newton_solve_scalar(lambda x: x - 2, lambda x: 1.0, 0.0, stats=stats)
        assert stats.total_solves == 2
        assert stats.mean_iterations == pytest.approx(1.0)
        other = NewtonStats()
        newton_solve_scalar(lambda x: x**3 - 8, lambda x: 3 * x**2, 10.0, stats=other)
        stats.merge(other)
        assert stats.total_solves == 3
        assert stats.max_iterations >= 2
        assert "solves" in stats.summary()


class TestTerminations:
    def test_resistor(self):
        r = ResistorTermination(50.0)
        assert r.current(1.0, 0.0) == pytest.approx(0.02)
        assert r.dcurrent_dv(1.0, 0.0) == pytest.approx(0.02)
        assert not r.nonlinear

    def test_open(self):
        o = OpenTermination()
        assert o.current(5.0, 0.0) == 0.0
        assert o.dcurrent_dv(5.0, 0.0) == 0.0

    def test_resistive_source(self):
        src = ResistiveSourceTermination(100.0, lambda t: 1.0 if t > 0 else 0.0)
        assert src.current(0.0, 1.0) == pytest.approx(-0.01)
        assert src.current(1.0, 1.0) == pytest.approx(0.0)

    def test_parallel_rc_pure_resistive_at_dc(self):
        rc = ParallelRCTermination(500.0, 1e-12, dt=1e-12, v0=1.0)
        # committed repeatedly at the same voltage the capacitor current dies out
        for _ in range(5):
            i = rc.commit(1.0, 0.0)
        assert i == pytest.approx(1.0 / 500.0)

    def test_parallel_rc_capacitive_step(self):
        dt = 1e-12
        rc = ParallelRCTermination(1e9, 1e-12, dt=dt, v0=0.0)
        i = rc.current(0.1, 0.0)
        assert i == pytest.approx(1e-12 * 0.1 / dt, rel=1e-6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ResistorTermination(0.0)
        with pytest.raises(ValueError):
            ParallelRCTermination(100.0, 1e-12, dt=0.0)

    def test_macromodel_termination_commit_tracks_port(self, receiver_model):
        term = MacromodelTermination.from_model(receiver_model, 5e-12, v0=0.0)
        assert term.nonlinear
        i = term.commit(0.5, 0.0)
        assert term.last_current == i
        assert term.port.time == pytest.approx(5e-12)

    def test_macromodel_termination_reset(self, receiver_model):
        term = MacromodelTermination.from_model(receiver_model, 5e-12, v0=0.0)
        term.commit(1.0, 0.0)
        term.reset(v0=0.0, i0=0.0)
        np.testing.assert_allclose(term.port.x_v, 0.0)


class TestCellCoefficients:
    def test_alpha_formulas_match_paper(self):
        dz = dx = dy = 0.723e-3
        dt = 1e-12
        eps = EPS0
        sigma = 0.01
        c = CellCoefficients(dz=dz, dx=dx, dy=dy, dt=dt, eps=eps, sigma=sigma)
        assert c.alpha0 == pytest.approx(1 + sigma * dt / (2 * eps))
        assert c.alpha1 == pytest.approx(1 - sigma * dt / (2 * eps))
        assert c.alpha2 == pytest.approx(dz * dt / eps)
        assert c.alpha3 == pytest.approx(dz * dt / (2 * eps * dx * dy))

    def test_lossless_alphas_are_one(self):
        c = CellCoefficients(dz=1e-3, dx=1e-3, dy=1e-3, dt=1e-12, eps=EPS0)
        assert c.alpha0 == 1.0
        assert c.alpha1 == 1.0


class TestHybridCellUpdate:
    def test_linear_resistor_closed_form(self):
        r = ResistorTermination(100.0)
        upd = HybridCellUpdate(r)
        # a v - b - c (i + i_prev) = 0 with i = v/100
        a, b, c = 2.0, 1.0, -0.5
        v, i = upd.solve(a, b, c, v_guess=0.0, t=0.0)
        expected_v = b / (a - c / 100.0)
        assert v == pytest.approx(expected_v)
        assert i == pytest.approx(expected_v / 100.0)

    def test_nonlinear_macromodel_converges_quickly(self, driver_model):
        bound = driver_model.bound(LogicStimulus.from_pattern("0", 2e-9))
        term = MacromodelTermination.from_model(bound, 5e-12, v0=0.0)
        stats = NewtonStats()
        upd = HybridCellUpdate(term, stats=stats)
        v, i = upd.solve(a=1.0, b=0.5, c=-0.01, v_guess=0.4, t=5e-12)
        assert stats.max_iterations <= 5
        assert np.isfinite(v) and np.isfinite(i)
        # residual satisfied
        assert 1.0 * v - 0.5 - (-0.01) * (i + 0.0) == pytest.approx(0.0, abs=1e-6)

    def test_stats_shared_across_updates(self):
        stats = NewtonStats()
        upd1 = HybridCellUpdate(ResistorTermination(50.0), stats=stats)
        upd2 = HybridCellUpdate(ResistorTermination(75.0), stats=stats)
        upd1.solve(1.0, 1.0, -0.5, 0.0, 0.0)
        upd2.solve(1.0, 1.0, -0.5, 0.0, 0.0)
        assert stats.total_solves == 2


class TestCosimContainers:
    def test_simulation_result_validation(self):
        with pytest.raises(ValueError):
            SimulationResult(times=np.zeros(5), voltages={"x": np.zeros(4)})

    def test_simulation_result_accessors(self):
        t = np.linspace(0, 1e-9, 11)
        res = SimulationResult(times=t, voltages={"near_end": t * 1e9}, engine="test")
        assert res.dt == pytest.approx(1e-10)
        assert res.duration == pytest.approx(1e-9)
        with pytest.raises(KeyError):
            res.voltage("missing")
        resampled = res.resampled_voltage("near_end", np.array([0.55e-9]))
        assert resampled[0] == pytest.approx(0.55)

    def test_link_description_presets(self):
        fig4 = LinkDescription.paper_figure4()
        fig5 = LinkDescription.paper_figure5()
        assert fig4.load == "rc"
        assert fig5.load == "receiver"
        assert fig4.z0 == pytest.approx(131.0)
        with pytest.raises(ValueError):
            LinkDescription(load="banana")
