"""Property-based tests (hypothesis) of the core invariants.

These exercise the paper's analytic claims and the numerical kernels over
randomly drawn inputs: the stability circle of the resampling map, the
structure of the state-update matrix ``Q``, the analytic RBF gradients, the
regressor construction, the waveform utilities, and the element-bank layer
(random topologies and random element-to-bank partitions must assemble the
same MNA system as the scalar path).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.elements import (
    Capacitor,
    CapacitorBank,
    Inductor,
    InductorBank,
    Resistor,
    ResistorBank,
    VoltageSource,
)
from repro.circuits.netlist import GROUND, Circuit
from repro.circuits.transient import TransientOptions, TransientSolver
from repro.core.newton import newton_solve_scalar
from repro.core.resampling import resampled_eigenvalue, resampling_matrix
from repro.core.stability import is_resampling_stable, simulate_scalar_test_problem
from repro.macromodel.regressor import build_regression_data
from repro.macromodel.rbf import GaussianRBFExpansion
from repro.waveforms.sampling import resample_waveform
from repro.waveforms.signals import BitPattern, TrapezoidalPulse


unit_disc = st.tuples(
    st.floats(min_value=0.0, max_value=0.999),
    st.floats(min_value=0.0, max_value=2 * np.pi),
).map(lambda rt: rt[0] * np.exp(1j * rt[1]))

taus = st.floats(min_value=1e-3, max_value=1.0)


class TestResamplingProperties:
    @given(lam=unit_disc, tau=taus)
    def test_eq16_image_stays_in_unit_disc(self, lam, tau):
        """Eq. (16)/(17): for tau <= 1 the resampled eigenvalue is stable."""
        assert abs(resampled_eigenvalue(lam, tau)) < 1.0 + 1e-12

    @given(lam=unit_disc, tau=taus)
    def test_image_lies_on_stability_circle(self, lam, tau):
        """The image lies within the circle centred at 1 - tau of radius tau."""
        lt = resampled_eigenvalue(lam, tau)
        assert abs(lt - (1.0 - tau)) <= tau * abs(lam) + 1e-12

    @given(lam=unit_disc, tau=st.floats(min_value=1.01, max_value=3.0))
    def test_unstable_tau_can_leave_unit_disc(self, lam, tau):
        """For tau > 1 the map is an extrapolation; lambda = -|lam| maps outside."""
        worst = -abs(lam) if abs(lam) > 0.5 else -0.9
        lt = resampled_eigenvalue(worst, tau)
        # the worst-case real eigenvalue exceeds the unit circle when
        # tau (1 + |lam|) > 2, which holds for tau large enough; check the
        # criterion function is consistent with the map in either case.
        assert is_resampling_stable(tau) is False
        if tau * (1 + abs(worst)) > 2.0:
            assert abs(lt) > 1.0

    @given(tau=taus, order=st.integers(min_value=1, max_value=8))
    def test_q_matrix_structure(self, tau, order):
        q = resampling_matrix(order, tau)
        assert q.shape == (order, order)
        np.testing.assert_allclose(np.diag(q), 1.0 - tau)
        if order > 1:
            np.testing.assert_allclose(np.diag(q, -1), tau)
        # Q is non-negative and every row sums to at most 1 (convexity of the
        # linear-interpolation interpretation).
        assert np.all(q >= -1e-15)
        assert np.all(q.sum(axis=1) <= 1.0 + 1e-12)

    @given(lam=unit_disc, tau=taus)
    @settings(max_examples=30)
    def test_marching_is_bounded_for_stable_tau(self, lam, tau):
        traj = simulate_scalar_test_problem(lam, tau, n_steps=100)
        assert np.all(traj <= 1.0 + 1e-9)


class TestRBFProperties:
    @given(
        data=st.data(),
        dim=st.integers(min_value=1, max_value=5),
        n_centers=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40)
    def test_gradient_matches_finite_difference(self, data, dim, n_centers):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        exp_ = GaussianRBFExpansion(
            centers=rng.normal(size=(n_centers, dim)),
            weights=rng.normal(size=n_centers),
            beta=float(rng.uniform(0.3, 2.0)),
        )
        x = rng.normal(size=dim)
        grad = exp_.gradient(x)
        h = 1e-6
        for k in range(dim):
            xp, xm = x.copy(), x.copy()
            xp[k] += h
            xm[k] -= h
            fd = (exp_(xp) - exp_(xm)) / (2 * h)
            assert grad[k] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25)
    def test_expansion_bounded_by_weight_sum(self, seed):
        rng = np.random.default_rng(seed)
        exp_ = GaussianRBFExpansion(
            centers=rng.normal(size=(5, 3)),
            weights=rng.normal(size=5),
            beta=float(rng.uniform(0.2, 3.0)),
        )
        x = rng.normal(size=3) * 3
        assert abs(exp_(x)) <= np.sum(np.abs(exp_.weights)) + 1e-12


class TestRegressorProperties:
    @given(
        n=st.integers(min_value=5, max_value=60),
        r=st.integers(min_value=1, max_value=4),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40)
    def test_build_regression_data_consistency(self, n, r, seed):
        if n < r + 2:
            return
        rng = np.random.default_rng(seed)
        v = rng.normal(size=n)
        i = rng.normal(size=n)
        v_now, x_v, x_i, target = build_regression_data(v, i, r)
        assert v_now.shape == (n - r,)
        assert x_v.shape == (n - r, r)
        # every row reproduces the original sequence ordering
        m = rng.integers(0, n - r)
        sample = m + r
        assert v_now[m] == v[sample]
        assert target[m] == i[sample]
        np.testing.assert_allclose(x_v[m], [v[sample - 1 - k] for k in range(r)])
        np.testing.assert_allclose(x_i[m], [i[sample - 1 - k] for k in range(r)])


class TestNewtonProperties:
    @given(
        root=st.floats(min_value=-5, max_value=5),
        slope=st.floats(min_value=0.1, max_value=10),
        x0=st.floats(min_value=-5, max_value=5),
    )
    def test_affine_solved_in_one_iteration(self, root, slope, x0):
        res = newton_solve_scalar(lambda x: slope * (x - root), lambda x: slope, x0)
        assert res.converged
        assert res.x == pytest.approx(root, abs=1e-6)
        assert res.iterations <= 1

    @given(a=st.floats(min_value=0.5, max_value=3.0), b=st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=30)
    def test_monotone_nonlinear_equation(self, a, b):
        res = newton_solve_scalar(
            lambda x: a * x + np.tanh(x) - b, lambda x: a + 1.0 / np.cosh(x) ** 2, 0.0
        )
        assert res.converged
        assert abs(a * res.x + np.tanh(res.x) - b) < 1e-8


def _random_partition(rng, n: int, n_parts: int):
    """Split ``range(n)`` into up to ``n_parts`` non-empty ordered runs."""
    n_parts = max(1, min(n_parts, n))
    cuts = np.sort(rng.choice(np.arange(1, n), size=n_parts - 1, replace=False)) \
        if n_parts > 1 else np.array([], dtype=int)
    bounds = [0, *cuts.tolist(), n]
    return [list(range(bounds[k], bounds[k + 1])) for k in range(len(bounds) - 1)]


def _assemble_system(circuit, backend: str, dt: float = 1e-11):
    """Static matrix and first-step RHS through the fast assembler."""
    from repro.perf.mna import FastPathAssembler

    compiled = circuit.compile()
    asm = FastPathAssembler(circuit, compiled, dt, "trapezoidal", 1e-12,
                            backend=backend, compact_banks=False)
    asm.begin_run()
    ctx = asm.begin_step(dt)
    A, rhs = asm.iterate(np.zeros(compiled.n_unknowns), ctx)
    A = A if isinstance(A, np.ndarray) else A.toarray()
    return np.asarray(A), np.asarray(rhs).copy()


class TestElementBankProperties:
    """Random topologies/partitions: banked == scalar MNA system and stats."""

    def _ladder_elements(self, rng, n):
        """Scalar RLC-ladder pieces with randomised values (order R, L, C)."""
        r_vals = rng.uniform(0.5, 5.0, size=n)
        l_vals = rng.uniform(0.5e-9, 2e-9, size=n)
        c_vals = rng.uniform(5e-15, 50e-15, size=n)
        resistors, inductors, capacitors = [], [], []
        prev = "in"
        for k in range(n):
            mid, node = f"m{k + 1}", f"n{k + 1}"
            resistors.append(Resistor(f"r{k}", prev, mid, r_vals[k]))
            inductors.append(Inductor(f"l{k}", mid, node, l_vals[k]))
            capacitors.append(Capacitor(f"c{k}", node, GROUND, c_vals[k]))
            prev = node
        return resistors, inductors, capacitors

    def _circuits(self, seed, n, n_banks):
        """The scalar circuit and a randomly-partitioned banked equivalent."""
        rng = np.random.default_rng(seed)
        resistors, inductors, capacitors = self._ladder_elements(rng, n)

        scalar = Circuit("scalar")
        scalar.add(VoltageSource("vin", "in", GROUND, 1.0))
        for el in (*resistors, *inductors, *capacitors):
            scalar.add(el)
        scalar.add(Resistor("rload", f"n{n}", GROUND, 100.0))

        banked = Circuit("banked")
        banked.add(VoltageSource("vin", "in", GROUND, 1.0))
        for p, part in enumerate(_random_partition(rng, n, n_banks)):
            banked.add(ResistorBank(
                f"rb{p}",
                [resistors[k].nodes[0] for k in part],
                [resistors[k].nodes[1] for k in part],
                [resistors[k].resistance for k in part],
            ))
            banked.add(InductorBank(
                f"lb{p}",
                [inductors[k].nodes[0] for k in part],
                [inductors[k].nodes[1] for k in part],
                [inductors[k].inductance for k in part],
            ))
            banked.add(CapacitorBank(
                f"cb{p}",
                [capacitors[k].nodes[0] for k in part],
                [capacitors[k].capacitance for k in part],
            ))
        banked.add(Resistor("rload", f"n{n}", GROUND, 100.0))
        return scalar, banked

    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(min_value=2, max_value=10),
        n_banks=st.integers(min_value=1, max_value=4),
        backend=st.sampled_from(["dense", "sparse"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_partition_assembles_identical_system(self, seed, n, n_banks, backend):
        scalar, banked = self._circuits(seed, n, n_banks)
        # Node unknowns share the sorted-name numbering, but branch unknowns
        # live at different offsets (scalar inductors are numbered per
        # element, banks per bank): compare through the permutation mapping
        # each scalar unknown to its banked position.
        sc, bc = scalar.compile(), banked.compile()
        assert sc.n_unknowns == bc.n_unknowns
        member = {}
        for bank in (el for el in banked.elements if isinstance(el, InductorBank)):
            base = bc.branch_index(bank.name)
            for i, (a, b) in enumerate(zip(bank.nodes_a, bank.nodes_b)):
                member[(a, b)] = base + i
        perm = np.arange(sc.n_unknowns)
        for name, offset in sc.branch_offset.items():
            if name == "vin":
                perm[offset] = bc.branch_index("vin")
            else:  # an inductor: locate its member slot by node pair
                el = scalar.element(name)
                perm[offset] = member[(el.nodes[0], el.nodes[1])]

        A_s, rhs_s = _assemble_system(scalar, backend)
        A_b, rhs_b = _assemble_system(banked, backend)
        np.testing.assert_allclose(
            A_b[np.ix_(perm, perm)], A_s, rtol=0, atol=1e-12,
            err_msg=f"static matrix mismatch ({backend})",
        )
        np.testing.assert_allclose(
            rhs_b[perm], rhs_s, rtol=0, atol=1e-12,
            err_msg=f"static rhs mismatch ({backend})",
        )

    @given(
        seed=st.integers(0, 2**31 - 1),
        rows=st.integers(min_value=2, max_value=4),
        cols=st.integers(min_value=2, max_value=4),
        n_banks=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_mesh_resistor_partition_identical_matrix(self, seed, rows, cols,
                                                      n_banks):
        from repro.circuits.ladder import rc_grid_circuit

        rng = np.random.default_rng(seed)
        scalar, _ = rc_grid_circuit(rows, cols, banked=False)
        resistors = [el for el in scalar.elements if isinstance(el, Resistor)]
        banked = Circuit("mesh-banked")
        for el in scalar.elements:
            if not isinstance(el, Resistor):
                banked.add(el)  # same instances: reset() re-initialises them
        for p, part in enumerate(_random_partition(rng, len(resistors), n_banks)):
            banked.add(ResistorBank(
                f"rb{p}",
                [resistors[k].nodes[0] for k in part],
                [resistors[k].nodes[1] for k in part],
                [resistors[k].resistance for k in part],
            ))
        # only the shared "vin" owns a branch row, so the unknown numbering
        # is identical and the systems compare entry for entry
        for backend in ("dense", "sparse"):
            A_s, rhs_s = _assemble_system(scalar, backend)
            A_b, rhs_b = _assemble_system(banked, backend)
            np.testing.assert_allclose(A_b, A_s, rtol=0, atol=1e-12)
            np.testing.assert_allclose(rhs_b, rhs_s, rtol=0, atol=1e-12)

    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(min_value=2, max_value=8),
        n_banks=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_partition_matches_waveforms_and_factorizations(self, seed, n, n_banks):
        scalar, banked = self._circuits(seed, n, n_banks)
        waves, stats = {}, {}
        for label, circuit in (("scalar", scalar), ("banked", banked)):
            solver = TransientSolver(
                circuit, 1e-11,
                TransientOptions(backend="sparse", compact_banks=False),
            )
            result = solver.run(3e-10, record_nodes=[f"n{n}"], record_branches=[])
            waves[label] = result.voltage(f"n{n}")
            stats[label] = solver.perf_stats
        scale = max(float(np.max(np.abs(waves["scalar"]))), 1e-30)
        assert float(np.max(np.abs(waves["banked"] - waves["scalar"]))) / scale <= 1e-12
        # identical solver work: one symbolic analysis, one factorization
        for key in ("factorizations", "symbolic_factorizations",
                    "sparse_factorizations", "cached_solves"):
            assert stats["banked"][key] == stats["scalar"][key], key


class TestWaveformProperties:
    @given(
        n=st.integers(min_value=3, max_value=200),
        factor=st.integers(min_value=1, max_value=6),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40)
    def test_resample_preserves_range(self, n, factor, seed):
        rng = np.random.default_rng(seed)
        v = rng.normal(size=n)
        out = resample_waveform(v, 1.0, 1.0 / factor)
        assert out.min() >= v.min() - 1e-12
        assert out.max() <= v.max() + 1e-12

    @given(
        pattern=st.text(alphabet="01", min_size=1, max_size=8),
        bit_time=st.floats(min_value=1e-10, max_value=1e-8),
    )
    @settings(max_examples=40)
    def test_bit_pattern_stays_within_levels(self, pattern, bit_time):
        wave = BitPattern(pattern=pattern, bit_time=bit_time, low=0.0, high=1.8, edge_time=bit_time / 10)
        t = np.linspace(0, wave.duration * 1.2, 200)
        out = wave(t)
        assert np.all(out >= -1e-12)
        assert np.all(out <= 1.8 + 1e-12)

    @given(
        t_eval=st.floats(min_value=-1e-9, max_value=6e-9),
        rise=st.floats(min_value=1e-12, max_value=5e-10),
    )
    def test_trapezoid_bounded(self, t_eval, rise):
        pulse = TrapezoidalPulse(low=0.0, high=1.0, t_start=0.0, rise_time=rise, width=1e-9, fall_time=rise)
        val = float(pulse(t_eval))
        assert -1e-12 <= val <= 1.0 + 1e-12
