"""Property-based tests (hypothesis) of the core invariants.

These exercise the paper's analytic claims and the numerical kernels over
randomly drawn inputs: the stability circle of the resampling map, the
structure of the state-update matrix ``Q``, the analytic RBF gradients, the
regressor construction, and the waveform utilities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.newton import newton_solve_scalar
from repro.core.resampling import resampled_eigenvalue, resampling_matrix
from repro.core.stability import is_resampling_stable, simulate_scalar_test_problem
from repro.macromodel.regressor import build_regression_data
from repro.macromodel.rbf import GaussianRBFExpansion
from repro.waveforms.sampling import resample_waveform
from repro.waveforms.signals import BitPattern, TrapezoidalPulse


unit_disc = st.tuples(
    st.floats(min_value=0.0, max_value=0.999),
    st.floats(min_value=0.0, max_value=2 * np.pi),
).map(lambda rt: rt[0] * np.exp(1j * rt[1]))

taus = st.floats(min_value=1e-3, max_value=1.0)


class TestResamplingProperties:
    @given(lam=unit_disc, tau=taus)
    def test_eq16_image_stays_in_unit_disc(self, lam, tau):
        """Eq. (16)/(17): for tau <= 1 the resampled eigenvalue is stable."""
        assert abs(resampled_eigenvalue(lam, tau)) < 1.0 + 1e-12

    @given(lam=unit_disc, tau=taus)
    def test_image_lies_on_stability_circle(self, lam, tau):
        """The image lies within the circle centred at 1 - tau of radius tau."""
        lt = resampled_eigenvalue(lam, tau)
        assert abs(lt - (1.0 - tau)) <= tau * abs(lam) + 1e-12

    @given(lam=unit_disc, tau=st.floats(min_value=1.01, max_value=3.0))
    def test_unstable_tau_can_leave_unit_disc(self, lam, tau):
        """For tau > 1 the map is an extrapolation; lambda = -|lam| maps outside."""
        worst = -abs(lam) if abs(lam) > 0.5 else -0.9
        lt = resampled_eigenvalue(worst, tau)
        # the worst-case real eigenvalue exceeds the unit circle when
        # tau (1 + |lam|) > 2, which holds for tau large enough; check the
        # criterion function is consistent with the map in either case.
        assert is_resampling_stable(tau) is False
        if tau * (1 + abs(worst)) > 2.0:
            assert abs(lt) > 1.0

    @given(tau=taus, order=st.integers(min_value=1, max_value=8))
    def test_q_matrix_structure(self, tau, order):
        q = resampling_matrix(order, tau)
        assert q.shape == (order, order)
        np.testing.assert_allclose(np.diag(q), 1.0 - tau)
        if order > 1:
            np.testing.assert_allclose(np.diag(q, -1), tau)
        # Q is non-negative and every row sums to at most 1 (convexity of the
        # linear-interpolation interpretation).
        assert np.all(q >= -1e-15)
        assert np.all(q.sum(axis=1) <= 1.0 + 1e-12)

    @given(lam=unit_disc, tau=taus)
    @settings(max_examples=30)
    def test_marching_is_bounded_for_stable_tau(self, lam, tau):
        traj = simulate_scalar_test_problem(lam, tau, n_steps=100)
        assert np.all(traj <= 1.0 + 1e-9)


class TestRBFProperties:
    @given(
        data=st.data(),
        dim=st.integers(min_value=1, max_value=5),
        n_centers=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40)
    def test_gradient_matches_finite_difference(self, data, dim, n_centers):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        exp_ = GaussianRBFExpansion(
            centers=rng.normal(size=(n_centers, dim)),
            weights=rng.normal(size=n_centers),
            beta=float(rng.uniform(0.3, 2.0)),
        )
        x = rng.normal(size=dim)
        grad = exp_.gradient(x)
        h = 1e-6
        for k in range(dim):
            xp, xm = x.copy(), x.copy()
            xp[k] += h
            xm[k] -= h
            fd = (exp_(xp) - exp_(xm)) / (2 * h)
            assert grad[k] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25)
    def test_expansion_bounded_by_weight_sum(self, seed):
        rng = np.random.default_rng(seed)
        exp_ = GaussianRBFExpansion(
            centers=rng.normal(size=(5, 3)),
            weights=rng.normal(size=5),
            beta=float(rng.uniform(0.2, 3.0)),
        )
        x = rng.normal(size=3) * 3
        assert abs(exp_(x)) <= np.sum(np.abs(exp_.weights)) + 1e-12


class TestRegressorProperties:
    @given(
        n=st.integers(min_value=5, max_value=60),
        r=st.integers(min_value=1, max_value=4),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40)
    def test_build_regression_data_consistency(self, n, r, seed):
        if n < r + 2:
            return
        rng = np.random.default_rng(seed)
        v = rng.normal(size=n)
        i = rng.normal(size=n)
        v_now, x_v, x_i, target = build_regression_data(v, i, r)
        assert v_now.shape == (n - r,)
        assert x_v.shape == (n - r, r)
        # every row reproduces the original sequence ordering
        m = rng.integers(0, n - r)
        sample = m + r
        assert v_now[m] == v[sample]
        assert target[m] == i[sample]
        np.testing.assert_allclose(x_v[m], [v[sample - 1 - k] for k in range(r)])
        np.testing.assert_allclose(x_i[m], [i[sample - 1 - k] for k in range(r)])


class TestNewtonProperties:
    @given(
        root=st.floats(min_value=-5, max_value=5),
        slope=st.floats(min_value=0.1, max_value=10),
        x0=st.floats(min_value=-5, max_value=5),
    )
    def test_affine_solved_in_one_iteration(self, root, slope, x0):
        res = newton_solve_scalar(lambda x: slope * (x - root), lambda x: slope, x0)
        assert res.converged
        assert res.x == pytest.approx(root, abs=1e-6)
        assert res.iterations <= 1

    @given(a=st.floats(min_value=0.5, max_value=3.0), b=st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=30)
    def test_monotone_nonlinear_equation(self, a, b):
        res = newton_solve_scalar(
            lambda x: a * x + np.tanh(x) - b, lambda x: a + 1.0 / np.cosh(x) ** 2, 0.0
        )
        assert res.converged
        assert abs(a * res.x + np.tanh(res.x) - b) < 1e-8


class TestWaveformProperties:
    @given(
        n=st.integers(min_value=3, max_value=200),
        factor=st.integers(min_value=1, max_value=6),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40)
    def test_resample_preserves_range(self, n, factor, seed):
        rng = np.random.default_rng(seed)
        v = rng.normal(size=n)
        out = resample_waveform(v, 1.0, 1.0 / factor)
        assert out.min() >= v.min() - 1e-12
        assert out.max() <= v.max() + 1e-12

    @given(
        pattern=st.text(alphabet="01", min_size=1, max_size=8),
        bit_time=st.floats(min_value=1e-10, max_value=1e-8),
    )
    @settings(max_examples=40)
    def test_bit_pattern_stays_within_levels(self, pattern, bit_time):
        wave = BitPattern(pattern=pattern, bit_time=bit_time, low=0.0, high=1.8, edge_time=bit_time / 10)
        t = np.linspace(0, wave.duration * 1.2, 200)
        out = wave(t)
        assert np.all(out >= -1e-12)
        assert np.all(out <= 1.8 + 1e-12)

    @given(
        t_eval=st.floats(min_value=-1e-9, max_value=6e-9),
        rise=st.floats(min_value=1e-12, max_value=5e-10),
    )
    def test_trapezoid_bounded(self, t_eval, rise):
        pulse = TrapezoidalPulse(low=0.0, high=1.0, t_start=0.0, rise_time=rise, width=1e-9, fall_time=rise)
        val = float(pulse(t_eval))
        assert -1e-12 <= val <= 1.0 + 1e-12
