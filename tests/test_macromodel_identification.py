"""Tests for macromodel identification and serialisation."""

import numpy as np
import pytest

from repro.macromodel.driver import LogicStimulus
from repro.macromodel.identification import (
    SwitchingRecord,
    extract_switching_weights,
    fit_linear_submodel,
    fit_rbf_submodel,
)
from repro.macromodel.library import (
    DeviceLibrary,
    ReferenceDeviceParameters,
    make_reference_driver_macromodel,
    make_reference_receiver_macromodel,
)
from repro.macromodel.serialization import (
    load_macromodel,
    macromodel_from_dict,
    macromodel_to_dict,
    save_macromodel,
)


def _static_nonlinear_record(n=800, seed=0):
    """Synthetic record of a memoryless nonlinear port: i = tanh(2 v) * 10 mA."""
    rng = np.random.default_rng(seed)
    v = np.convolve(rng.uniform(-1.0, 1.0, n), np.ones(6) / 6, mode="same")
    i = 0.01 * np.tanh(2.0 * v)
    return v, i


class TestFitRBFSubmodel:
    def test_fit_recovers_static_nonlinearity(self):
        v, i = _static_nonlinear_record()
        res = fit_rbf_submodel(v, i, dynamic_order=2, n_centers=60, beta=0.5, seed=1)
        assert res.rms_error < 5e-4
        # evaluate on a fresh point with a consistent history
        sub = res.submodel
        v0 = 0.4
        truth = 0.01 * np.tanh(2 * v0)
        pred = sub.current(v0, np.full(2, v0), np.full(2, truth))
        assert pred == pytest.approx(truth, abs=1e-3)

    def test_fit_captures_capacitive_dynamics(self):
        ts = 25e-12
        c = 2e-12
        rng = np.random.default_rng(2)
        v = np.convolve(rng.uniform(0, 1.8, 1000), np.ones(8) / 8, mode="same")
        dv = np.concatenate(([0.0], np.diff(v)))
        i = 0.02 * v + c * dv / ts
        res = fit_rbf_submodel(v, i, dynamic_order=2, n_centers=80, beta=0.5, seed=2)
        assert res.rms_error < 1e-3

    def test_deterministic_for_fixed_seed(self):
        v, i = _static_nonlinear_record()
        a = fit_rbf_submodel(v, i, 2, n_centers=30, seed=7)
        b = fit_rbf_submodel(v, i, 2, n_centers=30, seed=7)
        np.testing.assert_allclose(a.submodel.expansion.weights, b.submodel.expansion.weights)

    def test_separate_target_fit(self):
        v, i = _static_nonlinear_record()
        residual_target = i - 0.005 * v
        res = fit_rbf_submodel(v, i, 2, n_centers=60, beta=0.5, target=residual_target)
        assert res.rms_error < 1e-3

    def test_target_length_mismatch_rejected(self):
        v, i = _static_nonlinear_record(n=100)
        with pytest.raises(ValueError):
            fit_rbf_submodel(v, i, 2, target=np.zeros(50))

    def test_n_centers_capped_at_samples(self):
        v, i = _static_nonlinear_record(n=30)
        res = fit_rbf_submodel(v, i, 2, n_centers=500)
        assert res.submodel.expansion.n_centers <= 28


class TestFitLinearSubmodel:
    def test_recovers_known_arx_coefficients(self):
        rng = np.random.default_rng(3)
        v = rng.normal(size=500)
        i = np.zeros(500)
        for m in range(2, 500):
            i[m] = 0.3 * v[m] - 0.1 * v[m - 1] + 0.05 * v[m - 2] + 0.2 * i[m - 1]
        res = fit_linear_submodel(v, i, dynamic_order=2)
        sub = res.submodel
        assert sub.b0 == pytest.approx(0.3, abs=1e-6)
        assert sub.b_past[0] == pytest.approx(-0.1, abs=1e-6)
        assert sub.a_past[0] == pytest.approx(0.2, abs=1e-6)
        assert res.rms_error < 1e-9


class TestSwitchingWeightExtraction:
    def test_extraction_on_synthetic_two_state_port(self, driver_model, params):
        """Build synthetic switching records from the known submodels and a
        prescribed weight trajectory; the extraction must recover it."""
        ts = params.sampling_time
        n = 60
        ramp = np.clip(np.arange(n) / 20.0, 0.0, 1.0)
        w_u_true, w_d_true = ramp, 1.0 - ramp
        records = []
        for load, v_ref in ((100.0, 0.0), (100.0, params.vdd)):
            v = np.zeros(n)
            i = np.zeros(n)
            xv = np.zeros(2)
            xi = np.zeros(2)
            for m in range(n):
                # solve w_u i_u(v) + w_d i_d(v) = (v_ref - v)/load for v by bisection
                lo, hi = -0.5, params.vdd + 0.5
                for _ in range(60):
                    mid = 0.5 * (lo + hi)
                    f = (
                        w_u_true[m] * driver_model.submodel_up.current(mid, xv, xi)
                        + w_d_true[m] * driver_model.submodel_down.current(mid, xv, xi)
                        - (v_ref - mid) / load
                    )
                    if f > 0:
                        hi = mid
                    else:
                        lo = mid
                v[m] = 0.5 * (lo + hi)
                i[m] = (v_ref - v[m]) / load * -1.0 * -1.0  # current into device = -(v-v_ref)/load
                i[m] = -(v[m] - v_ref) / load
                xv = np.concatenate(([v[m]], xv[:-1]))
                xi = np.concatenate(([i[m]], xi[:-1]))
            records.append(SwitchingRecord(v=v, i=i))
        w_u, w_d = extract_switching_weights(
            driver_model.submodel_up, driver_model.submodel_down, records, ts, "up"
        )
        # templates are padded by r samples at the start
        r = driver_model.dynamic_order
        recovered = w_u[r : r + 40]
        np.testing.assert_allclose(recovered, w_u_true[:40], atol=0.12)

    def test_requires_two_records(self, driver_model):
        rec = SwitchingRecord(v=np.zeros(10), i=np.zeros(10))
        with pytest.raises(ValueError):
            extract_switching_weights(
                driver_model.submodel_up, driver_model.submodel_down, [rec], 25e-12, "up"
            )

    def test_bad_direction_rejected(self, driver_model):
        rec = SwitchingRecord(v=np.zeros(10), i=np.zeros(10))
        with pytest.raises(ValueError):
            extract_switching_weights(
                driver_model.submodel_up, driver_model.submodel_down, [rec, rec], 25e-12, "sideways"
            )


class TestLibraryAndSerialization:
    def test_library_round_trip(self, tmp_path, driver_model, receiver_model):
        lib = DeviceLibrary()
        lib.add(driver_model)
        lib.add(receiver_model)
        path = str(tmp_path / "library.json")
        lib.save(path)
        loaded = DeviceLibrary.load(path)
        assert set(loaded.names()) == set(lib.names())
        drv = loaded.get(driver_model.name)
        np.testing.assert_allclose(
            drv.submodel_up.expansion.weights, driver_model.submodel_up.expansion.weights
        )

    def test_driver_serialisation_preserves_behaviour(self, tmp_path, driver_model):
        path = str(tmp_path / "driver.json")
        save_macromodel(driver_model, path)
        loaded = load_macromodel(path)
        stim = LogicStimulus.from_pattern("010", 2e-9)
        a = driver_model.bound(stim)
        b = loaded.bound(stim)
        xv = np.full(2, 0.9)
        xi = np.zeros(2)
        for t in (0.5e-9, 2.2e-9, 3.5e-9):
            assert a.current(0.9, xv, xi, t) == pytest.approx(b.current(0.9, xv, xi, t), rel=1e-12)

    def test_receiver_serialisation_round_trip(self, receiver_model):
        data = macromodel_to_dict(receiver_model)
        loaded = macromodel_from_dict(data)
        xv = np.full(2, 2.3)
        xi = np.zeros(2)
        assert loaded.current(2.3, xv, xi) == pytest.approx(receiver_model.current(2.3, xv, xi))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            macromodel_from_dict({"format_version": 1, "kind": "mystery"})

    def test_unsupported_version_rejected(self, driver_model):
        data = macromodel_to_dict(driver_model)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            macromodel_from_dict(data)

    def test_library_rejects_unnamed_model(self):
        lib = DeviceLibrary()
        with pytest.raises(ValueError):
            lib.add(object())

    def test_with_reference_devices(self):
        lib = DeviceLibrary.with_reference_devices(ReferenceDeviceParameters())
        assert len(lib) == 2
        assert "cmos18_driver" in lib

    def test_reference_models_are_usable(self):
        params = ReferenceDeviceParameters()
        drv = make_reference_driver_macromodel(params, n_centers=40)
        rx = make_reference_receiver_macromodel(params, n_centers=20)
        assert drv.dynamic_order == params.dynamic_order
        assert rx.dynamic_order == params.dynamic_order
