"""The sweep sharding subsystem (:mod:`repro.sweep.shard`).

The contract pinned here, in order of importance:

1. **Bit identity** — a sharded sweep (linear and RBF families, healthy
   and fault-plan-poisoned) produces waveforms, statuses and failure
   records *bit-identical* to the single-process lockstep engine;
2. **corner groups are atomic** — the planner never splits a
   static-sharing group across shards (splitting would change the
   multi-RHS block width and therefore the bits);
3. **deterministic merge** — the merged result is in input scenario
   order regardless of the order shards complete in;
4. **edge validation** — bad worker counts fail fast everywhere they can
   enter (spec, CLI, environment, service), and the ``engine.workers`` /
   ``engine.shards`` flags route through the option-backend gate;
5. the content-addressed :class:`~repro.service.ResultStore` survives
   same-hash puts racing from multiple processes (what shard workers and
   daemon workers now do).
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os

import numpy as np
import pytest

import repro.sweep.shard as shard_mod
from repro.api import EngineOptions, ScenarioSpec, SimulationSpec, run
from repro.resilience import RunHealth, SolveFailure, faults
from repro.sweep.scenario import Scenario
from repro.sweep.shard import (
    default_workers,
    merge_shard_results,
    plan_shards,
    resolve_worker_count,
    run_sharded,
)


def _mp_ctx():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _corner_sweep(n_groups: int = 3, per_group: int = 2, family: str = "linear",
                  duration: float = 1.5e-9, **engine_kw) -> SimulationSpec:
    scenarios = []
    for g in range(n_groups):
        for k in range(per_group):
            scenarios.append(ScenarioSpec(
                name=f"g{g}s{k}",
                bit_pattern="0110" if k % 2 else "0101",
                corner={"load_resistance": 300.0 + 50.0 * g},
            ))
    return SimulationSpec(
        kind="sweep",
        duration=duration,
        scenarios=tuple(scenarios),
        engine=EngineOptions(dt=1e-11, sweep_family=family, **engine_kw),
    )


def _assert_identical(base, other):
    """Result-level bit identity: names, times, waveforms, status, failures."""
    assert base.names() == other.names()
    assert np.array_equal(base.times, other.times)
    for name in base.names():
        assert np.array_equal(base.waveform(name), other.waveform(name)), name
    assert base.raw.status == other.raw.status
    assert base.raw.failures == other.raw.failures
    assert [s.name for s in base.raw.scenarios] == [s.name for s in other.raw.scenarios]


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------

class TestPlanShards:
    def _scenarios(self, groups):
        """[2, 3, 1] -> 2+3+1 scenarios in interleaved input order."""
        scenarios = []
        remaining = list(groups)
        index = 0
        while any(remaining):
            for g, left in enumerate(remaining):
                if left:
                    scenarios.append(Scenario(
                        name=f"g{g}s{groups[g] - left}",
                        corner={"z": 100.0 + g},
                    ))
                    remaining[g] -= 1
                    index += 1
        return scenarios

    def test_groups_are_never_split(self):
        scenarios = self._scenarios([3, 2, 2, 1])
        for n_shards in (1, 2, 3, 4, 8):
            plan = plan_shards(scenarios, n_shards)
            for shard in plan.shards:
                keys = {scenarios[i].static_key() for i in shard}
                # every group present on a shard is present *completely*
                for key in keys:
                    owners = [i for i, sc in enumerate(scenarios)
                              if sc.static_key() == key]
                    assert set(owners) <= set(shard)

    def test_every_scenario_assigned_exactly_once(self):
        scenarios = self._scenarios([3, 2, 2, 1])
        plan = plan_shards(scenarios, 3)
        assigned = [i for shard in plan.shards for i in shard]
        assert sorted(assigned) == list(range(len(scenarios)))

    def test_shard_count_capped_by_group_count(self):
        scenarios = self._scenarios([2, 2])
        plan = plan_shards(scenarios, 8)
        assert plan.n_shards == 2
        assert plan.n_groups == 2
        # single group: one shard regardless of the worker budget
        single = plan_shards(self._scenarios([4]), 8)
        assert single.n_shards == 1

    def test_balanced_and_deterministic(self):
        scenarios = self._scenarios([4, 1, 1, 1, 1])
        plan = plan_shards(scenarios, 2)
        loads = sorted(len(s) for s in plan.shards)
        assert loads == [4, 4]  # LPT: the big group alone, the singles together
        again = plan_shards(list(scenarios), 2)
        assert again == plan

    def test_input_order_within_shards(self):
        scenarios = self._scenarios([2, 2, 2])
        plan = plan_shards(scenarios, 2)
        for shard in plan.shards:
            assert list(shard) == sorted(shard)

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError, match="at least 1"):
            plan_shards(self._scenarios([1]), 0)


# ---------------------------------------------------------------------------
# worker-count resolution and edge validation
# ---------------------------------------------------------------------------

class TestWorkerCounts:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert default_workers() == 3
        assert resolve_worker_count(None) == 3
        # an explicit spec value beats the environment
        assert resolve_worker_count(2) == 2

    @pytest.mark.parametrize("raw", ["0", "-1", "two", "1.5"])
    def test_env_garbage_fails_fast(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", raw)
        with pytest.raises(ValueError, match="REPRO_SWEEP_WORKERS"):
            default_workers()

    @pytest.mark.parametrize("field", ["workers", "shards"])
    def test_spec_rejects_nonpositive(self, field):
        with pytest.raises(ValueError, match=f"engine.{field} must be at least 1"):
            EngineOptions(**{field: 0})
        with pytest.raises(ValueError, match=f"engine.{field}"):
            EngineOptions(**{field: -2})

    def test_spec_round_trip_with_workers(self):
        from repro.api import spec_from_dict

        spec = _corner_sweep(workers=4, shards=2)
        assert spec_from_dict(json.loads(spec.to_json())) == spec

    def test_cli_run_rejects_zero_workers(self, tmp_path):
        from repro.api.cli import main

        job = tmp_path / "sweep.json"
        _corner_sweep().save(str(job))
        assert main(["run", str(job), "--workers", "0"]) == 2

    def test_cli_serve_rejects_zero_workers(self):
        from repro.api.cli import main

        assert main(["serve", "--workers", "0", "--port", "0"]) == 2

    def test_job_manager_rejects_zero_workers(self, tmp_path):
        from repro.service import JobManager, ResultStore

        with pytest.raises(ValueError, match="at least 1"):
            JobManager(store=ResultStore(root=str(tmp_path)), workers=0)

    def test_run_surfaces_env_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "0")
        with pytest.raises(ValueError, match="REPRO_SWEEP_WORKERS"):
            run(_corner_sweep(n_groups=1, per_group=1, duration=2e-10))

    def test_workers_flag_routes_through_option_backend_gate(self, monkeypatch):
        import repro.api.engines as engines_mod

        monkeypatch.delitem(engines_mod._OPTION_BACKENDS, "workers")
        spec = _corner_sweep(workers=2)
        with pytest.raises(NotImplementedError) as excinfo:
            run(spec)
        message = str(excinfo.value)
        assert "engine.workers" in message
        assert "run_sharded" in message          # the hint names the backend
        assert "engine.shards" in message        # ...and the supported options

    def test_shards_flag_routes_through_option_backend_gate(self, monkeypatch):
        import repro.api.engines as engines_mod

        monkeypatch.delitem(engines_mod._OPTION_BACKENDS, "shards")
        with pytest.raises(NotImplementedError, match="engine.shards"):
            run(_corner_sweep(shards=2))


# ---------------------------------------------------------------------------
# bit-identical equivalence: sharded == single-process lockstep
# ---------------------------------------------------------------------------

class TestShardedEquivalence:
    def test_linear_sweep_bit_identical(self):
        spec = _corner_sweep(n_groups=3, per_group=2, family="linear")
        base = run(spec)
        sharded = run(dataclasses.replace(
            spec, engine=dataclasses.replace(spec.engine, workers=3)))
        _assert_identical(base, sharded)
        perf = sharded.raw.perf_stats
        assert perf["shards"] == 3
        assert perf["workers"] == 3
        assert perf["corner_groups"] == 3
        # exactly one static factorization per corner group per shard
        assert perf["shared_factorizations"] == 3
        for shard in perf["shard_stats"]:
            assert shard["shared_factorizations"] == shard["static_groups"]
        assert 0.0 < perf["parallel_efficiency"] <= 1.0

    def test_rbf_sweep_bit_identical(self):
        spec = _corner_sweep(n_groups=2, per_group=2, family="rbf",
                             duration=1e-9, batch_prepare=True)
        base = run(spec)
        sharded = run(dataclasses.replace(
            spec, engine=dataclasses.replace(spec.engine, workers=2)))
        _assert_identical(base, sharded)
        assert sharded.raw.perf_stats["shards"] == 2

    def test_poisoned_scenario_fault_plan(self, monkeypatch):
        # One persistently-poisoned scenario: quarantined + failed on its
        # solo retry in both runs, everything else bit-identical.  The
        # plan travels to the workers through the environment.
        monkeypatch.setenv("REPRO_FAULT_PLAN", "nan@5x*:scenario=g1s0")
        faults.reload_env_plan()
        try:
            spec = _corner_sweep(n_groups=3, per_group=2, family="linear")
            base = run(spec)
            faults.reload_env_plan()  # re-arm for the sharded run
            sharded = run(dataclasses.replace(
                spec, engine=dataclasses.replace(spec.engine, workers=3)))
        finally:
            monkeypatch.delenv("REPRO_FAULT_PLAN")
            faults.reload_env_plan()
        assert base.raw.status_of("g1s0") == "failed"
        _assert_identical(base, sharded)
        assert sharded.raw.perf_stats["quarantined_scenarios"] == ["g1s0"]
        health = sharded.raw.perf_stats["health"]
        assert health["failure_counts"].get("nan_inf", 0) > 0

    def test_explicit_shard_count(self):
        # shards=2 with plenty of workers: exactly 2 sub-batches.
        spec = _corner_sweep(n_groups=4, per_group=1, shards=2, workers=4)
        result = run(spec)
        perf = result.raw.perf_stats
        assert perf["shards"] == 2
        assert perf["corner_groups"] == 4

    def test_single_group_runs_in_process(self):
        # One corner group cannot shard: telemetry says so, still works.
        spec = _corner_sweep(n_groups=1, per_group=3, workers=4)
        base = run(dataclasses.replace(
            spec, engine=dataclasses.replace(spec.engine, workers=None)))
        sharded = run(spec)
        _assert_identical(base, sharded)
        assert sharded.raw.perf_stats["shards"] == 1

    def test_cli_sharded_run(self, tmp_path):
        from repro.api.cli import main

        job = tmp_path / "sweep.json"
        out = tmp_path / "out.json"
        _corner_sweep(n_groups=2, per_group=2).save(str(job))
        assert main(["run", str(job), "--workers", "2",
                     "--output", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["perf_stats"]["shards"] == 2
        assert document["perf_stats"]["workers"] == 2


# ---------------------------------------------------------------------------
# the deterministic merge
# ---------------------------------------------------------------------------

class TestMerge:
    def test_merge_independent_of_completion_order(self, monkeypatch):
        """The regression the merge exists for: shards finishing in any
        order (here: forced reverse) must not disturb scenario order,
        statuses or failure records."""
        orders = []

        def reversed_pool(payloads, workers):
            results = [None] * len(payloads)
            for index in reversed(range(len(payloads))):
                orders.append(index)
                results[index] = shard_mod._solve_shard(payloads[index])
            return results

        monkeypatch.setattr(shard_mod, "_run_pool", reversed_pool)
        monkeypatch.setenv("REPRO_FAULT_PLAN", "nan@5x*:scenario=g1s0")
        faults.reload_env_plan()
        try:
            spec = _corner_sweep(n_groups=3, per_group=2, family="linear")
            base = run(spec)
            faults.reload_env_plan()
            sharded = run(dataclasses.replace(
                spec, engine=dataclasses.replace(spec.engine, workers=3)))
        finally:
            monkeypatch.delenv("REPRO_FAULT_PLAN")
            faults.reload_env_plan()
        assert orders == [2, 1, 0]  # the shards really completed backwards
        _assert_identical(base, sharded)
        assert [s.name for s in sharded.raw.scenarios] \
            == [sc.name for sc in spec.scenarios]
        assert sharded.raw.status_of("g1s0") == "failed"
        assert "g1s0" in sharded.raw.failures

    def test_merge_shard_results_validates_count(self):
        scenarios = [Scenario(name="a", corner={"z": 1.0}),
                     Scenario(name="b", corner={"z": 2.0})]
        plan = plan_shards(scenarios, 2)
        with pytest.raises(ValueError, match="expected 2 shard results"):
            merge_shard_results(scenarios, plan, [])

    def test_run_sharded_rejects_non_sweep_spec(self):
        with pytest.raises(ValueError, match="sweep spec"):
            run_sharded(SimulationSpec(kind="circuit"))

    def test_counters_and_health_aggregate(self):
        spec = _corner_sweep(n_groups=3, per_group=2, family="linear")
        base = run(spec)
        sharded = run(dataclasses.replace(
            spec, engine=dataclasses.replace(spec.engine, workers=3)))
        b, s = base.raw.perf_stats, sharded.raw.perf_stats
        for key in ("static_groups", "shared_factorizations",
                    "block_solves", "static_reuses"):
            assert s[key] == b[key], key
        assert sorted(s["direct_linear_scenarios"]) \
            == sorted(b["direct_linear_scenarios"])
        assert set(s["per_scenario"]) == set(b["per_scenario"])
        assert s["health"]["ok"] is True


# ---------------------------------------------------------------------------
# resilience-type round trips used by the merge
# ---------------------------------------------------------------------------

class TestHealthRoundTrip:
    def test_solve_failure_round_trip(self):
        failure = SolveFailure(kind="nan_inf", step=7, scenario="s1",
                               residual=1.5, message="boom",
                               context={"site": "solve"})
        assert SolveFailure.from_dict(failure.to_dict()) == failure

    def test_run_health_round_trip_and_merge(self):
        health = RunHealth()
        health.record(SolveFailure(kind="nan_inf", step=3, scenario="x"))
        health.retries = 2
        health.recovered_steps = 1
        health.backend_fallbacks = 4
        again = RunHealth.from_dict(health.to_dict())
        assert again.to_dict() == health.to_dict()
        merged = RunHealth().merge(again).merge(RunHealth.from_dict(health.to_dict()))
        assert merged.retries == 4
        assert merged.failure_counts == {"nan_inf": 2}


# ---------------------------------------------------------------------------
# the content-addressed store under multi-process races
# ---------------------------------------------------------------------------

def _reference_result():
    from repro.api import Result

    times = np.linspace(0.0, 1e-9, 101)
    return Result(
        times=times,
        waveforms={"far": np.sin(times * 1e9), "near": np.cos(times * 1e9)},
        engine="unit-race",
        perf_stats={"solves": 1},
        meta={"kind": "circuit", "label": "race"},
    )


def _race_put(root: str, spec_hash: str, repeats: int) -> None:
    """Process target: hammer the same hash with identical results."""
    from repro.service import ResultStore

    store = ResultStore(root=root)
    result = _reference_result()
    for _ in range(repeats):
        store.put(spec_hash, result)


class TestResultStoreRace:
    def test_concurrent_same_hash_puts(self, tmp_path):
        from repro.service import ResultStore

        root = str(tmp_path / "race")
        spec_hash = "ab" + "0" * 62
        ctx = _mp_ctx()
        procs = [ctx.Process(target=_race_put, args=(root, spec_hash, 10))
                 for _ in range(4)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        store = ResultStore(root=root)
        document = store.get(spec_hash)   # checksum-validated read
        assert document is not None

        # byte-identical to an uncontended single-process write
        ref_root = str(tmp_path / "ref")
        ref_store = ResultStore(root=ref_root)
        ref_store.put(spec_hash, _reference_result())
        raced = json.dumps(document, sort_keys=True)
        reference = json.dumps(ref_store.get(spec_hash), sort_keys=True)
        assert raced == reference

        # ...including the raw on-disk JSON entry (identical writers ->
        # identical bytes, never a torn mixture)
        rel = os.path.join(spec_hash[:2], f"{spec_hash}.json")
        raced_bytes = (tmp_path / "race" / rel).read_bytes()
        ref_bytes = (tmp_path / "ref" / rel).read_bytes()
        assert raced_bytes == ref_bytes

        # the NPZ artifact survived the race too
        npz = store.npz_path(spec_hash)
        assert npz is not None
        with np.load(npz, allow_pickle=False) as data:
            assert np.array_equal(data["times"], _reference_result().times)
