"""Monte Carlo statistical SI (:mod:`repro.sweep.montecarlo`).

The contract pinned here:

1. **Determinism** — the same ``stats`` block regenerates a bit-identical
   scenario batch (and therefore bit-identical waveforms), and the seed
   enters the spec ``content_hash`` but never the ``topology_hash``;
2. **Composition** — a sampled sweep is an ordinary sweep once expanded:
   sharded execution is bit-identical to single-process, and corner
   draws are limited to ``corner_groups`` static-sharing groups;
3. **Aggregation** — distribution summaries, bathtub curves and the
   worst-case record are consistent with the per-scenario eye metrics,
   and adaptive refinement tightens the worst-case estimate
   monotonically;
4. **Plumbing** — spec validation, hash preservation of pre-stats jobs,
   CLI overrides, quick caps and the service status surface.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.api import (
    DistributionSpec,
    EngineOptions,
    ScenarioSpec,
    SimulationSpec,
    StatsSpec,
    StimulusSpec,
    run,
    spec_from_dict,
)
from repro.sweep.montecarlo import (
    generate_scenarios,
    merge_sweep_results,
    run_montecarlo,
)
from repro.sweep.report import bathtub_curve, metric_distribution
from repro.waveforms.eye import EyeDiagram


def _stats(**overrides) -> StatsSpec:
    base = dict(
        samples=10,
        seed=42,
        corner_groups=3,
        distributions={
            "corner.load_resistance": {"kind": "uniform", "low": 300.0, "high": 700.0},
            "bit_pattern": {"kind": "pattern", "bits": 5},
            "drive_strength": {
                "kind": "normal", "mean": 1.0, "std": 0.05, "low": 0.8, "high": 1.2,
            },
        },
    )
    base.update(overrides)
    return StatsSpec(**base)


def _mc_spec(stats=None, **engine_kw) -> SimulationSpec:
    return SimulationSpec(
        kind="sweep",
        duration=12e-9,
        stimulus=StimulusSpec(bit_time=2e-9),
        stats=stats if stats is not None else _stats(),
        engine=EngineOptions(dt=1e-11, sweep_family="linear", **engine_kw),
    )


# ---------------------------------------------------------------------------
# spec layer
# ---------------------------------------------------------------------------
class TestStatsSpecValidation:
    def test_round_trips_through_json(self):
        spec = _mc_spec(_stats(refine_rounds=2, refine_samples=4))
        doc = json.loads(json.dumps(spec.to_dict()))
        assert spec_from_dict(doc) == spec

    def test_stats_enters_content_hash_not_topology_hash(self):
        spec = _mc_spec()
        reseeded = dataclasses.replace(
            spec, stats=dataclasses.replace(spec.stats, seed=43))
        assert reseeded.content_hash() != spec.content_hash()
        assert reseeded.topology_hash() == spec.topology_hash()

    def test_pre_stats_specs_hash_unchanged(self):
        # the stats key is absent when unset, so every pre-existing job's
        # content hash (and cached result) survives the new field
        spec = SimulationSpec(kind="circuit")
        assert "stats" not in spec.to_dict()

    def test_scenarios_and_stats_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="must be empty"):
            SimulationSpec(
                kind="sweep",
                stats=_stats(),
                scenarios=(ScenarioSpec(name="a"),),
                engine=EngineOptions(sweep_family="linear"),
            )

    def test_stats_only_for_sweeps(self):
        with pytest.raises(ValueError, match="only valid for kind='sweep'"):
            SimulationSpec(kind="circuit", stats=_stats())

    def test_rbf_family_rejects_drive_distribution(self):
        with pytest.raises(ValueError, match="drive_strength"):
            SimulationSpec(
                kind="sweep", stats=_stats(),
                engine=EngineOptions(sweep_family="rbf"),
            )

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown target"):
            StatsSpec(samples=2, distributions={
                "voltage": {"kind": "uniform", "low": 0, "high": 1}})

    def test_bit_pattern_needs_pattern_kind(self):
        with pytest.raises(ValueError, match="bit_pattern"):
            StatsSpec(samples=2, distributions={
                "bit_pattern": {"kind": "uniform", "low": 0, "high": 1}})

    def test_corner_needs_numeric_kind(self):
        with pytest.raises(ValueError, match="numeric"):
            StatsSpec(samples=2, distributions={
                "corner.z0": {"kind": "pattern", "bits": 3}})

    @pytest.mark.parametrize("field, value", [
        ("samples", 0),
        ("corner_groups", 0),
        ("bins", 1),
        ("refine_shrink", 0.0),
        ("refine_shrink", 1.5),
        ("refine_samples", 0),
        ("refine_rounds", -1),
    ])
    def test_bad_scalars_rejected(self, field, value):
        with pytest.raises(ValueError, match=f"stats.{field}"):
            _stats(**{field: value})

    def test_distribution_validation(self):
        with pytest.raises(ValueError, match="low < high"):
            DistributionSpec(kind="uniform", low=2.0, high=1.0)
        with pytest.raises(ValueError, match="std"):
            DistributionSpec(kind="normal", mean=0.0, std=0.0)
        with pytest.raises(ValueError, match="values"):
            DistributionSpec(kind="choice")
        with pytest.raises(ValueError, match="weights"):
            DistributionSpec(kind="choice", values=(1.0, 2.0), weights=(1.0,))
        with pytest.raises(ValueError, match="bits"):
            DistributionSpec(kind="pattern")

    def test_quickened_caps_sampling(self):
        spec = _mc_spec(_stats(samples=500, refine_rounds=4, refine_samples=64))
        quick = spec.quickened()
        assert quick.stats.samples == 8
        assert quick.stats.refine_rounds == 1
        assert quick.stats.refine_samples == 4


# ---------------------------------------------------------------------------
# the generator
# ---------------------------------------------------------------------------
class TestGenerateScenarios:
    def test_same_seed_regenerates_identical_batch(self):
        stats = _stats()
        assert generate_scenarios(stats) == generate_scenarios(stats)

    def test_different_seed_differs(self):
        assert generate_scenarios(_stats()) != generate_scenarios(_stats(seed=43))

    def test_corner_draws_shared_round_robin(self):
        batch = generate_scenarios(_stats(samples=10, corner_groups=3))
        corners = [tuple(sorted(sc.corner.items())) for sc in batch]
        assert len(set(corners)) == 3
        # scenario i takes corner draw i % 3
        for i, corner in enumerate(corners):
            assert corner == corners[i % 3]

    def test_null_corner_groups_draws_per_scenario(self):
        batch = generate_scenarios(_stats(samples=8, corner_groups=None))
        corners = {tuple(sorted(sc.corner.items())) for sc in batch}
        assert len(corners) == 8

    def test_draws_respect_bounds(self):
        batch = generate_scenarios(_stats(samples=64))
        for sc in batch:
            assert 300.0 <= sc.corner["load_resistance"] <= 700.0
            assert 0.8 <= sc.drive_strength <= 1.2  # normal clip bounds
            assert len(sc.bit_pattern) == 5
            assert set(sc.bit_pattern) <= {"0", "1"}

    def test_choice_kinds(self):
        stats = StatsSpec(samples=32, seed=1, distributions={
            "drive_strength": {"kind": "choice", "values": [0.9, 1.1],
                               "weights": [3.0, 1.0]},
            "bit_pattern": {"kind": "choice", "values": ["0101", "0110"]},
        })
        batch = generate_scenarios(stats)
        assert {sc.drive_strength for sc in batch} <= {0.9, 1.1}
        assert {sc.bit_pattern for sc in batch} <= {"0101", "0110"}

    def test_names_are_prefixed_and_ordered(self):
        batch = generate_scenarios(_stats(samples=3), prefix="mc-r2-")
        assert [sc.name for sc in batch] == [
            "mc-r2-00000", "mc-r2-00001", "mc-r2-00002"]


# ---------------------------------------------------------------------------
# aggregation helpers
# ---------------------------------------------------------------------------
class TestMetricDistribution:
    def test_summary_shape(self):
        dist = metric_distribution(np.linspace(0.0, 1.0, 101), bins=10)
        assert dist["count"] == 101
        assert dist["min"] == 0.0 and dist["max"] == 1.0
        assert dist["percentiles"]["p50"] == pytest.approx(0.5)
        assert dist["percentiles"]["p1"] <= dist["percentiles"]["p99"]
        assert sum(dist["histogram"]["counts"]) == 101
        assert len(dist["histogram"]["edges"]) == 11
        json.dumps(dist)

    def test_degenerate_sample_single_bin(self):
        dist = metric_distribution([0.5, 0.5, 0.5])
        assert dist["std"] == 0.0
        assert sum(dist["histogram"]["counts"]) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            metric_distribution([])


class TestBathtubCurve:
    def _eye(self, traces, bit_time=1.0):
        n = traces.shape[1]
        return EyeDiagram(
            phase=(bit_time / n) * np.arange(n), traces=traces, bit_time=bit_time)

    def test_violation_rates(self):
        # two HIGH traces: one clean (1.0 everywhere), one dipping to the
        # midline at phase index 1 -> 50 % violation there, 0 elsewhere
        clean = np.ones(10)
        dipped = np.ones(10)
        dipped[1] = 0.5
        curve = bathtub_curve([self._eye(np.vstack([clean, dipped]))], 0.0, 1.0)
        assert curve["n_traces"] == 2
        assert curve["violation_rate"][1] == pytest.approx(0.5)
        assert curve["violation_rate"][2] == 0.0
        assert curve["open_fraction"] == pytest.approx(0.9)
        json.dumps(curve)

    def test_low_traces_violate_above_midline(self):
        low_trace = np.zeros(10)
        low_trace[4] = 0.6  # pops over the midline mid-UI
        curve = bathtub_curve([self._eye(low_trace[None, :])], 0.0, 1.0)
        assert curve["violation_rate"][4] == 1.0
        assert curve["violation_rate"][3] == 0.0

    def test_mismatched_phase_axis_rejected(self):
        a = self._eye(np.ones((1, 10)))
        b = self._eye(np.ones((1, 8)))
        with pytest.raises(ValueError, match="phase axis"):
            bathtub_curve([a, b], 0.0, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bathtub_curve([], 0.0, 1.0)


# ---------------------------------------------------------------------------
# end-to-end execution
# ---------------------------------------------------------------------------
class TestRunMonteCarlo:
    def _run(self, **kw):
        spec = _mc_spec(**kw) if kw else _mc_spec()
        return run_montecarlo(spec)

    def test_summary_consistent_with_sweep(self):
        spec = _mc_spec(_stats(samples=6, corner_groups=2))
        sweep, mc = run_montecarlo(spec)
        assert sweep.n_scenarios == 6
        assert mc["generated"] == 6
        assert mc["completed"] == 6
        assert mc["eye_height"]["count"] == 6
        assert mc["corner_groups"] == 2
        assert sweep.perf_stats["static_groups"] == 2
        json.dumps(mc)

    def test_factorizations_limited_to_corner_groups(self):
        # the whole point of corner_groups: 12 scenarios, 3 factorizations
        spec = _mc_spec(_stats(samples=12, corner_groups=3))
        sweep, _ = run_montecarlo(spec)
        assert sweep.perf_stats["static_groups"] == 3
        assert sweep.perf_stats["shared_factorizations"] == 3

    def test_same_seed_bit_identical_rerun(self):
        spec = _mc_spec(_stats(samples=4, corner_groups=2))
        a, mc_a = run_montecarlo(spec)
        b, mc_b = run_montecarlo(spec)
        assert mc_a == mc_b
        for sc in a.scenarios:
            assert np.array_equal(a.voltage(sc.name, "far"), b.voltage(sc.name, "far"))

    def test_sharded_bit_identical_to_single_process(self):
        spec = _mc_spec(_stats(samples=6, corner_groups=3))
        single = run(spec)
        sharded = run(dataclasses.replace(
            spec, engine=dataclasses.replace(spec.engine, workers=3)))
        assert single.names() == sharded.names()
        for name in single.names():
            assert np.array_equal(single.waveform(name), sharded.waveform(name)), name
        assert sharded.raw.perf_stats["shards"] == 3
        assert single.meta["montecarlo"] == sharded.meta["montecarlo"]

    def test_refinement_tightens_worst_case_monotonically(self):
        spec = _mc_spec(_stats(samples=8, corner_groups=4,
                               refine_rounds=2, refine_samples=3))
        sweep, mc = run_montecarlo(spec)
        assert sweep.n_scenarios == 8 + 2 * 3
        trace = [mc["base_worst_height"]] + [
            r["worst_height"] for r in mc["refinement"]]
        assert all(b <= a for a, b in zip(trace, trace[1:]))
        assert mc["worst"]["eye_height"] == trace[-1]
        assert len(mc["refinement"]) == 2
        names = {sc.name for sc in sweep.scenarios}
        assert any(name.startswith("mc-r2-") for name in names)

    def test_run_routes_stats_specs_and_carries_summary(self):
        spec = _mc_spec(_stats(samples=4, corner_groups=2))
        result = run(spec)
        assert result.engine == "sweep-linear"
        mc = result.meta["montecarlo"]
        assert mc["samples"] == 4
        assert set(mc) >= {"eye_height", "eye_width", "bathtub", "worst"}

    def test_build_sweep_rejects_unexpanded_stats(self):
        from repro.api.engines import build_sweep

        with pytest.raises(ValueError, match="expanded"):
            build_sweep(_mc_spec())

    def test_merge_requires_parts(self):
        with pytest.raises(ValueError):
            merge_sweep_results([])


# ---------------------------------------------------------------------------
# plumbing: CLI and service surfaces
# ---------------------------------------------------------------------------
class TestPlumbing:
    def test_cli_overrides_stats(self, tmp_path, capsys):
        from repro.api.cli import main

        job = tmp_path / "mc.json"
        out = tmp_path / "out.json"
        _mc_spec(_stats(samples=6, corner_groups=2)).save(str(job))
        assert main(["run", str(job), "--samples", "3", "--stat-seed", "9",
                     "--output", str(out)]) == 0
        text = capsys.readouterr().out
        assert "montecarlo: 3/3 scenarios (seed 9" in text
        document = json.loads(out.read_text())
        assert document["meta"]["montecarlo"]["seed"] == 9

    def test_cli_stat_flags_need_stats_block(self, tmp_path, capsys):
        from repro.api.cli import main

        job = tmp_path / "plain.json"
        SimulationSpec(kind="circuit").save(str(job))
        assert main(["run", str(job), "--samples", "3"]) == 2
        assert "stats block" in capsys.readouterr().err

    def test_cli_describe_shows_sampling(self, tmp_path, capsys):
        from repro.api.cli import main

        job = tmp_path / "mc.json"
        _mc_spec().save(str(job))
        assert main(["describe", str(job)]) == 0
        assert "sampled from 3 distributions, seed 42" in capsys.readouterr().out

    def test_service_status_surfaces_montecarlo(self):
        from repro.service.jobs import Job

        spec = _mc_spec(_stats(samples=4, corner_groups=2))
        result = run(spec)
        job = Job(job_id="j1", spec=spec, spec_hash=spec.content_hash(),
                  state="done", result_doc=result.to_dict())
        doc = job.status_dict()
        assert doc["montecarlo"]["samples"] == 4
        assert doc["montecarlo"]["completed"] == 4
        assert doc["montecarlo"]["worst"]["scenario"].startswith("mc")
