"""Tests for the regressor machinery, the driver and the receiver macromodels."""

import numpy as np
import pytest

from repro.macromodel.driver import DriverMacromodel, LogicStimulus, SwitchingWeights
from repro.macromodel.library import (
    driver_pulldown_current,
    driver_pullup_current,
)
from repro.macromodel.receiver import LinearSubmodel
from repro.macromodel.regressor import RegressorSpec, RegressorState, build_regression_data


class TestRegressor:
    def test_state_push_order(self):
        state = RegressorState(3)
        state.push(1.0, 0.1)
        state.push(2.0, 0.2)
        np.testing.assert_allclose(state.x_v, [2.0, 1.0, 0.0])
        np.testing.assert_allclose(state.x_i, [0.2, 0.1, 0.0])

    def test_state_copy_is_independent(self):
        state = RegressorState(2, v0=1.0)
        clone = state.copy()
        state.push(5.0, 0.5)
        np.testing.assert_allclose(clone.x_v, [1.0, 1.0])

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            RegressorSpec(dynamic_order=0, sampling_time=1e-12)
        with pytest.raises(ValueError):
            RegressorSpec(dynamic_order=2, sampling_time=0.0)

    def test_build_regression_data_shapes(self):
        v = np.arange(10.0)
        i = np.arange(10.0) * 0.1
        v_now, x_v, x_i, target = build_regression_data(v, i, 3)
        assert v_now.shape == (7,)
        assert x_v.shape == (7, 3)
        assert x_i.shape == (7, 3)
        assert target.shape == (7,)

    def test_build_regression_data_alignment(self):
        v = np.arange(6.0)
        i = 10.0 + np.arange(6.0)
        v_now, x_v, x_i, target = build_regression_data(v, i, 2)
        # sample m=2: present v=2, past v = [1, 0], past i = [11, 10]
        assert v_now[0] == 2.0
        np.testing.assert_allclose(x_v[0], [1.0, 0.0])
        np.testing.assert_allclose(x_i[0], [11.0, 10.0])
        assert target[0] == 12.0

    def test_too_short_record_rejected(self):
        with pytest.raises(ValueError):
            build_regression_data(np.zeros(3), np.zeros(3), 2)


class TestLogicStimulus:
    def test_from_pattern_010(self):
        stim = LogicStimulus.from_pattern("010", 2e-9)
        assert stim.initial_state == 0
        assert stim.events == ((2e-9, 1), (4e-9, 0))

    def test_state_at(self):
        stim = LogicStimulus.from_pattern("010", 2e-9)
        assert stim.state_at(1e-9) == 0
        assert stim.state_at(3e-9) == 1
        assert stim.state_at(5e-9) == 0

    def test_repeated_bits_collapse(self):
        stim = LogicStimulus.from_pattern("0011", 1e-9)
        assert stim.events == ((2e-9, 1),)

    def test_last_event_before(self):
        stim = LogicStimulus.from_pattern("0101", 1e-9)
        assert stim.last_event_before(0.5e-9) is None
        assert stim.last_event_before(2.5e-9) == (2e-9, 0)

    def test_invalid_pattern(self):
        with pytest.raises(ValueError):
            LogicStimulus.from_pattern("", 1e-9)
        with pytest.raises(ValueError):
            LogicStimulus.from_pattern("012", 1e-9)


class TestSwitchingWeights:
    def test_raised_cosine_limits(self):
        w = SwitchingWeights.raised_cosine(0.5e-9, 25e-12)
        assert w.up_wu[0] == pytest.approx(0.0)
        assert w.up_wu[-1] == pytest.approx(1.0)
        assert w.up_wd[0] == pytest.approx(1.0)
        assert w.up_wd[-1] == pytest.approx(0.0)

    def test_weights_sum_to_one_for_raised_cosine(self):
        w = SwitchingWeights.raised_cosine(0.5e-9, 25e-12)
        np.testing.assert_allclose(w.up_wu + w.up_wd, 1.0)

    def test_steady_state_before_first_event(self):
        w = SwitchingWeights.raised_cosine(0.5e-9, 25e-12)
        stim = LogicStimulus.from_pattern("010", 2e-9)
        assert w.weights_at(0.5e-9, stim) == (0.0, 1.0)

    def test_long_after_up_transition(self):
        w = SwitchingWeights.raised_cosine(0.5e-9, 25e-12)
        stim = LogicStimulus.from_pattern("01", 2e-9)
        wu, wd = w.weights_at(3.9e-9, stim)
        assert wu == pytest.approx(1.0)
        assert wd == pytest.approx(0.0)

    def test_mid_transition_interpolation(self):
        w = SwitchingWeights.raised_cosine(0.4e-9, 25e-12)
        stim = LogicStimulus.from_pattern("01", 1e-9)
        wu, wd = w.weights_at(1e-9 + 0.2e-9, stim)
        assert wu == pytest.approx(0.5, abs=0.05)
        assert wd == pytest.approx(0.5, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            SwitchingWeights(template_dt=0.0, up_wu=[0, 1], up_wd=[1, 0], down_wu=[1, 0], down_wd=[0, 1])
        with pytest.raises(ValueError):
            SwitchingWeights(template_dt=1e-12, up_wu=[0.0], up_wd=[1.0], down_wu=[1, 0], down_wd=[0, 1])


class TestDriverMacromodel:
    def test_requires_stimulus(self, driver_model):
        with pytest.raises(RuntimeError):
            driver_model.current(0.0, np.zeros(2), np.zeros(2), 0.0)

    def test_static_low_state_matches_analytic(self, driver_model, params):
        bound = driver_model.bound(LogicStimulus.from_pattern("0", 2e-9))
        for v in (0.3, 0.9, 1.5):
            xv = np.full(2, v)
            truth = float(driver_pulldown_current(v, params))
            xi = np.full(2, truth)
            assert bound.current(v, xv, xi, 1e-9) == pytest.approx(truth, abs=6e-3)

    def test_static_high_state_matches_analytic(self, driver_model, params):
        bound = driver_model.bound(LogicStimulus.from_pattern("1", 2e-9))
        for v in (0.3, 0.9, 1.5):
            xv = np.full(2, v)
            truth = float(driver_pullup_current(v, params))
            xi = np.full(2, truth)
            assert bound.current(v, xv, xi, 1e-9) == pytest.approx(truth, abs=6e-3)

    def test_weight_blend_during_switching(self, driver_model):
        bound = driver_model.bound(LogicStimulus.from_pattern("01", 2e-9))
        xv, xi = np.zeros(2), np.zeros(2)
        # mid-transition the current is between the two pure-state currents
        i_mid = bound.current(0.9, np.full(2, 0.9), xi, 2e-9 + 0.25e-9)
        i_low = bound.current(0.9, np.full(2, 0.9), xi, 1e-9)
        i_high = bound.current(0.9, np.full(2, 0.9), xi, 3.9e-9)
        assert min(i_low, i_high) - 1e-3 <= i_mid <= max(i_low, i_high) + 1e-3
        del xv

    def test_dcurrent_dv_finite_difference(self, driver_model):
        bound = driver_model.bound(LogicStimulus.from_pattern("01", 2e-9))
        xv = np.full(2, 0.7)
        xi = np.zeros(2)
        t = 2.3e-9
        h = 1e-6
        fd = (bound.current(0.7 + h, xv, xi, t) - bound.current(0.7 - h, xv, xi, t)) / (2 * h)
        assert bound.dcurrent_dv(0.7, xv, xi, t) == pytest.approx(fd, rel=1e-3, abs=1e-6)

    def test_rest_voltage(self, driver_model):
        low = driver_model.bound(LogicStimulus.from_pattern("0", 2e-9))
        high = driver_model.bound(LogicStimulus.from_pattern("1", 2e-9))
        assert low.rest_voltage(0.0, 1.8) == 0.0
        assert high.rest_voltage(0.0, 1.8) == 1.8

    def test_submodel_order_mismatch_rejected(self, driver_model):
        with pytest.raises(ValueError):
            DriverMacromodel(
                submodel_up=driver_model.submodel_up,
                submodel_down=LinearSubmodelStub(),
                weights=driver_model.weights,
                sampling_time=25e-12,
            )


class LinearSubmodelStub:
    """Minimal stand-in with a mismatched dynamic order."""

    dynamic_order = 5


class TestReceiverMacromodel:
    def test_linear_submodel_from_capacitance(self):
        ts = 25e-12
        lin = LinearSubmodel.from_capacitance(1e-12, 1e-6, ts, order=2)
        # constant voltage -> only the leakage term remains
        v = 1.0
        i = lin.current(v, np.array([v, v]), np.zeros(2))
        assert i == pytest.approx(1e-6, rel=1e-6)

    def test_linear_submodel_capacitive_step(self):
        ts = 25e-12
        c = 1e-12
        lin = LinearSubmodel.from_capacitance(c, 0.0, ts, order=1)
        # dv of 0.1 V in one sample -> i = C dv/dt
        i = lin.current(0.1, np.array([0.0]), np.zeros(1))
        assert i == pytest.approx(c * 0.1 / ts)

    def test_receiver_in_rail_current_is_small(self, receiver_model):
        xv = np.full(2, 0.9)
        xi = np.zeros(2)
        assert abs(receiver_model.current(0.9, xv, xi)) < 1e-3

    @staticmethod
    def _steady_current(model, v, iterations=80):
        """Self-consistent static current (the current regressors must hold the
        port's own steady current, as they do in a real simulation)."""
        xv = np.full(model.dynamic_order, v)
        i = 0.0
        for _ in range(iterations):
            i = model.current(v, xv, np.full(model.dynamic_order, i))
        return i

    def test_receiver_overshoot_clamps(self, receiver_model, params):
        # well past the clamp knee the protection current is large
        strong = self._steady_current(receiver_model, params.vdd + 1.1)
        mild = self._steady_current(receiver_model, params.vdd + 0.4)
        assert strong > 5e-3
        # mild overshoot draws far less current than the strong one
        assert mild < strong

    def test_receiver_undershoot_clamps(self, receiver_model, params):
        assert self._steady_current(receiver_model, -1.1) < -5e-3

    def test_receiver_derivative_finite_difference(self, receiver_model):
        xv = np.full(2, 2.2)
        xi = np.zeros(2)
        h = 1e-6
        fd = (receiver_model.current(2.2 + h, xv, xi) - receiver_model.current(2.2 - h, xv, xi)) / (2 * h)
        assert receiver_model.dcurrent_dv(2.2, xv, xi) == pytest.approx(fd, rel=1e-3, abs=1e-7)

    def test_mismatched_orders_rejected(self, receiver_model):
        lin = LinearSubmodel(b0=0.0, b_past=np.zeros(3), a_past=np.zeros(3))
        with pytest.raises(ValueError):
            type(receiver_model)(
                linear=lin,
                protection_up=receiver_model.protection_up,
                protection_down=receiver_model.protection_down,
                sampling_time=25e-12,
            )


class TestReferenceParameters:
    def test_static_curves_sign_conventions(self, params):
        # LOW state sinks current (positive into the device) for v > 0.
        assert float(driver_pulldown_current(0.9, params)) > 0
        # HIGH state sources current (negative into the device) for v < Vdd.
        assert float(driver_pullup_current(0.9, params)) < 0
        # At the rails the respective transistor currents vanish.
        assert float(driver_pulldown_current(0.0, params)) == pytest.approx(0.0, abs=1e-12)
        assert float(driver_pullup_current(params.vdd, params)) == pytest.approx(0.0, abs=1e-12)

    def test_parameters_frozen(self, params):
        with pytest.raises(Exception):
            params.vdd = 2.5
