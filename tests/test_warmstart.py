"""Cross-job warm starts (PR 9): topology keys, the plan store, bit identity.

The contract pinned here, in order of importance:

1. **Bit identity** — a warm run (adopting a cached
   :class:`~repro.perf.plan.AssemblyPlan`) produces waveforms
   *bit-identical* to a cold run, across the whole matrix: linear and
   RBF devices, dense and sparse backends, banked and scalar elements,
   single-process and sharded sweeps;
2. **warm means warm** — after one cold run of a topology, reruns pay
   zero symbolic factorizations (``plan_cache_hits``/``misses`` count
   the adoption per component);
3. **the cache can never fail a job** — corrupt entries, foreign files
   missing the checksum wrapper, and stale plans of a different system
   shape are unlinked/ignored and the run falls back cold;
4. **keying** — :meth:`~repro.api.spec.SimulationSpec.topology_hash` is
   invariant under stimulus/scenario/label/schedule changes and
   sensitive to anything that changes the assembled system's shape;
5. the atomic cache helpers survive same-key writes racing from
   multiple processes (what shard workers sharing one plan do).
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import urllib.request

import numpy as np
import pytest

import repro.perf.plan_store as plan_store_mod
from repro import cache
from repro.api import (
    EngineOptions,
    LinkSpec,
    ScenarioSpec,
    SimulationSpec,
    load_spec,
    run,
)
from repro.perf.plan import PLAN_FORMAT, AssemblyPlan
from repro.perf.plan_store import PlanStore, resolve_warm_start

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JOBS_DIR = os.path.join(REPO_ROOT, "examples", "jobs")


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """A private cache directory with warm starts in their default (off) state."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    monkeypatch.delenv("REPRO_PLAN_CACHE", raising=False)
    plan_store_mod._DEFAULT_STORES.clear()
    yield tmp_path
    plan_store_mod._DEFAULT_STORES.clear()


@pytest.fixture
def library_models(params, driver_model, receiver_model):
    """Session-fitted library models injected to skip per-run fitting."""
    from repro.experiments.devices import ReferenceMacromodels

    return ReferenceMacromodels(
        driver=driver_model, receiver=receiver_model, params=params,
        source="library",
    )


def _ladder_spec(warm_start=True, **overrides) -> SimulationSpec:
    """The sparse-ladder golden job, shortened and warm-start enabled."""
    spec = load_spec(os.path.join(JOBS_DIR, "sparse_ladder.json"))
    engine_kw = {"warm_start": warm_start}
    link_kw = {}
    for key, value in overrides.items():
        (link_kw if key in ("segments",) else engine_kw)[key] = value
    return dataclasses.replace(
        spec,
        duration=1.5e-9,
        link=dataclasses.replace(spec.link, **link_kw),
        engine=dataclasses.replace(spec.engine, **engine_kw),
    )


def _corner_sweep(n_groups=3, per_group=2, segments=0, **engine_kw) -> SimulationSpec:
    scenarios = []
    for g in range(n_groups):
        for k in range(per_group):
            scenarios.append(ScenarioSpec(
                name=f"g{g}s{k}",
                bit_pattern="0110" if k % 2 else "0101",
                corner={"load_resistance": 300.0 + 50.0 * g},
            ))
    return SimulationSpec(
        kind="sweep",
        duration=1.0e-9,
        scenarios=tuple(scenarios),
        link=LinkSpec(segments=segments),
        engine=EngineOptions(dt=1e-11, sweep_family="linear",
                             warm_start=True, **engine_kw),
    )


def _assert_identical(base, other):
    assert base.names() == other.names()
    assert base.times.tobytes() == other.times.tobytes()
    for name in base.names():
        assert base.waveform(name).tobytes() == other.waveform(name).tobytes(), name


def _cold_then_warm(spec, models=None):
    """Run twice with the in-process memory cache dropped in between.

    The warm run is therefore forced through the on-disk store — the
    cross-process path shard and daemon workers take.
    """
    cold = run(spec, models=models)
    plan_store_mod._DEFAULT_STORES.clear()
    warm = run(spec, models=models)
    return cold, warm


# ---------------------------------------------------------------------------
# the topology key
# ---------------------------------------------------------------------------

class TestTopologyHash:
    def test_stable_and_distinct_from_content_hash(self):
        spec = _ladder_spec()
        assert spec.topology_hash() == spec.topology_hash()
        assert spec.topology_hash() != spec.content_hash()

    def test_stimulus_scenarios_label_neutral(self):
        spec = _corner_sweep()
        key = spec.topology_hash()
        restimulated = dataclasses.replace(
            spec, stimulus=dataclasses.replace(spec.stimulus, bit_pattern="111000")
        )
        relabelled = dataclasses.replace(spec, label="other label")
        fewer = dataclasses.replace(spec, scenarios=spec.scenarios[:2])
        for variant in (restimulated, relabelled, fewer):
            assert variant.topology_hash() == key
            assert variant.content_hash() != spec.content_hash()

    def test_schedule_and_fleet_knobs_neutral(self):
        spec = _corner_sweep()
        key = spec.topology_hash()
        for engine_kw in (
            {"dt": 2e-11},
            {"workers": 4, "shards": 2},
            {"warm_start": False},
            {"max_retries": 2, "on_nonconvergence": "warn"},
            {"fast": True},
            {"batch_prepare": True},
        ):
            variant = dataclasses.replace(
                spec, engine=dataclasses.replace(spec.engine, **engine_kw)
            )
            assert variant.topology_hash() == key, engine_kw

    def test_system_shape_sensitive(self):
        spec = _corner_sweep()
        key = spec.topology_hash()
        resized = dataclasses.replace(
            spec, link=dataclasses.replace(spec.link, segments=40)
        )
        resparsed = dataclasses.replace(
            spec, engine=dataclasses.replace(spec.engine, sparse_mna=True)
        )
        reseeded = dataclasses.replace(
            spec, devices=dataclasses.replace(spec.devices, seed=7)
        )
        assert len({key, resized.topology_hash(), resparsed.topology_hash(),
                    reseeded.topology_hash()}) == 4

    def test_shard_sub_specs_share_the_parent_key(self):
        from repro.sweep.shard import _sub_spec

        spec = _corner_sweep(workers=4)
        sub = _sub_spec(spec, (0, 1))
        assert sub.topology_hash() == spec.topology_hash()
        assert sub.content_hash() != spec.content_hash()


# ---------------------------------------------------------------------------
# the engine option
# ---------------------------------------------------------------------------

class TestWarmStartOption:
    def test_round_trip_and_default(self):
        assert EngineOptions().warm_start is None
        for value in (True, False, None):
            options = EngineOptions(warm_start=value)
            assert options.to_dict()["warm_start"] is value
            assert EngineOptions.from_dict(options.to_dict()).warm_start is value

    def test_rejects_non_boolean(self):
        with pytest.raises(ValueError, match="warm_start"):
            EngineOptions(warm_start="yes")

    def test_resolution_against_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLAN_CACHE", raising=False)
        assert resolve_warm_start(None) is False
        assert resolve_warm_start(True) is True
        monkeypatch.setenv("REPRO_PLAN_CACHE", "1")
        assert resolve_warm_start(None) is True
        assert resolve_warm_start(False) is False  # the spec always wins

    def test_cli_flags(self):
        from repro.api.cli import _build_parser

        parser = _build_parser()
        assert parser.parse_args(["run", "j.json"]).warm_start is None
        assert parser.parse_args(["run", "j.json", "--warm-start"]).warm_start is True
        assert parser.parse_args(["run", "j.json", "--no-warm-start"]).warm_start is False


# ---------------------------------------------------------------------------
# plan payload round-trip
# ---------------------------------------------------------------------------

class TestPlanPayload:
    def _captured_plan(self, n_sections=40) -> AssemblyPlan:
        from repro.circuits.ladder import rc_ladder_circuit
        from repro.perf.mna import FastPathAssembler

        circuit, _ = rc_ladder_circuit(n_sections)
        compiled = circuit.compile()
        assembler = FastPathAssembler(
            circuit, compiled, 1e-12, "trapezoidal", 1e-12, backend="sparse"
        )
        assembler.begin_run()
        plan = AssemblyPlan.capture(assembler)
        assert plan is not None
        return plan

    def test_payload_round_trip_is_exact(self):
        plan = self._captured_plan()
        payload = json.loads(json.dumps(plan.to_payload()))  # via real JSON
        restored = AssemblyPlan.from_payload(payload)
        assert restored.n_unknowns == plan.n_unknowns
        assert restored.backend == plan.backend
        assert restored.linear_only == plan.linear_only
        assert restored.compaction == plan.compaction
        for attr in ("static_rows", "static_cols", "static_indices",
                     "static_indptr", "static_positions"):
            a, b = getattr(plan, attr), getattr(restored, attr)
            assert np.array_equal(a, b) and a.dtype == b.dtype, attr

    def test_from_payload_rejects_garbage(self):
        plan = self._captured_plan()
        good = plan.to_payload()
        for bad in (
            None,
            [],
            "text",
            {"plan_format": PLAN_FORMAT + 1},
            {**good, "backend": "cuda"},
            {**good, "n_unknowns": -1},
            {**good, "static_cols": good["static_cols"][:-1]},  # rows/cols torn
            {**good, "static_indptr": good["static_indptr"][:-1]},
        ):
            with pytest.raises((ValueError, TypeError, KeyError)):
                AssemblyPlan.from_payload(bad)

    def test_adoption_guards_require_exact_equality(self):
        plan = self._captured_plan()
        assert plan.matches_static(plan.static_rows, plan.static_cols)
        perturbed = plan.static_rows.copy()
        perturbed[0] += 1
        assert not plan.matches_static(perturbed, plan.static_cols)
        assert not plan.matches_static(plan.static_rows[:-1], plan.static_cols[:-1])


# ---------------------------------------------------------------------------
# warm == cold, across the matrix
# ---------------------------------------------------------------------------

class TestWarmEqualsCold:
    def _assert_warm(self, cold, warm, sparse=True):
        _assert_identical(cold, warm)
        stats = warm.perf_stats
        assert stats["plan_cache_hits"] >= 1
        assert stats["plan_cache_misses"] == 0
        if sparse:
            assert stats["symbolic_factorizations"] == 0
            assert cold.perf_stats["symbolic_factorizations"] >= 1

    def test_sparse_rbf_banked(self, fresh_cache, library_models):
        spec = _ladder_spec()
        cold, warm = _cold_then_warm(spec, models=library_models)
        self._assert_warm(cold, warm)
        store = PlanStore()
        assert os.path.exists(store.path(spec.topology_hash()))

    def test_sparse_rbf_scalar_elements(self, fresh_cache, monkeypatch,
                                        library_models):
        monkeypatch.setenv("REPRO_BANK_COMPACTION", "0")
        cold, warm = _cold_then_warm(_ladder_spec(), models=library_models)
        self._assert_warm(cold, warm)

    def test_dense_rbf(self, fresh_cache, library_models):
        spec = _ladder_spec(segments=12, sparse_mna=False)
        cold, warm = _cold_then_warm(spec, models=library_models)
        self._assert_warm(cold, warm, sparse=False)
        assert warm.perf_stats["backend"] == "dense"

    def test_sparse_linear_sweep_shares_one_setup(self, fresh_cache):
        spec = _corner_sweep(segments=120, sparse_mna=True)
        cold, warm = _cold_then_warm(spec)
        _assert_identical(cold, warm)
        # Cold: the first corner group compresses the pattern once; every
        # other group adopts it through the in-process memory store.
        assert cold.perf_stats["symbolic_factorizations"] == 1
        assert cold.perf_stats["plan_cache_hits"] >= 1
        # Warm (memory dropped): every group adopts from disk.
        assert warm.perf_stats["symbolic_factorizations"] == 0
        assert warm.perf_stats["plan_cache_misses"] == 0

    def test_sharded_sweep_warms_from_shared_store(self, fresh_cache):
        spec = _corner_sweep(segments=60, sparse_mna=True, workers=2)
        single = run(dataclasses.replace(
            spec, engine=dataclasses.replace(spec.engine, workers=1,
                                             warm_start=False)
        ))
        cold = run(spec)   # worker processes populate the shared store
        warm = run(spec)   # fresh workers adopt from it
        _assert_identical(single, cold)
        _assert_identical(single, warm)
        perf = warm.perf_stats
        assert perf["symbolic_factorizations"] == 0
        assert perf["plan_cache_misses"] == 0
        for entry in perf["shard_stats"]:
            assert entry["symbolic_factorizations"] == 0
            assert entry["plan_cache_hits"] >= 1

    def test_env_toggle_enables_null_specs(self, fresh_cache, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE", "1")
        spec = _corner_sweep(segments=60, sparse_mna=True)
        spec = dataclasses.replace(
            spec, engine=dataclasses.replace(spec.engine, warm_start=None)
        )
        cold, warm = _cold_then_warm(spec)
        _assert_identical(cold, warm)
        assert warm.perf_stats["symbolic_factorizations"] == 0

    def test_disk_disabled_still_dedups_in_process(self, fresh_cache, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        spec = _corner_sweep(segments=60, sparse_mna=True)
        result = run(spec)
        # groups 2..G adopted group 1's setup through the memory cache...
        assert result.perf_stats["symbolic_factorizations"] == 1
        assert result.perf_stats["plan_cache_hits"] >= 1
        # ...but nothing reached the disk.
        assert not os.path.exists(os.path.join(str(fresh_cache), "plans"))


# ---------------------------------------------------------------------------
# fallback paths: the cache can never fail a job
# ---------------------------------------------------------------------------

class TestColdFallbacks:
    def test_corrupt_plan_is_unlinked_and_rebuilt(self, fresh_cache):
        spec = _corner_sweep(segments=60, sparse_mna=True)
        reference = run(spec)
        path = PlanStore().path(spec.topology_hash())
        with open(path, "w") as handle:
            handle.write('{"torn":')
        plan_store_mod._DEFAULT_STORES.clear()
        rerun = run(spec)
        _assert_identical(reference, rerun)
        # The corrupt entry was unlinked and the cold rebuild re-persisted it.
        plan_store_mod._DEFAULT_STORES.clear()
        assert PlanStore().get(spec.topology_hash()) is not None

    def test_foreign_wrapperless_file_is_unlinked(self, fresh_cache):
        store = PlanStore()
        key = "ab" + "0" * 62
        path = store.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        bare = {"n_unknowns": 5, "note": "no checksum wrapper at all"}
        with open(path, "w") as handle:
            json.dump(bare, handle)
        # read_json passes legacy bare documents through as-is...
        assert cache.read_json(path) == bare
        # ...so the store must reject and unlink them itself.
        assert store.get(key) is None
        assert not os.path.exists(path)
        assert store.stats["misses"] == 1

    def test_stale_plan_of_another_shape_falls_back_cold(self, fresh_cache):
        from repro.circuits.ladder import rc_ladder_circuit
        from repro.perf.mna import FastPathAssembler

        spec = _corner_sweep(segments=60, sparse_mna=True)
        reference = run(dataclasses.replace(
            spec, engine=dataclasses.replace(spec.engine, warm_start=False)
        ))
        # Poison the topology key with a plan captured from a different
        # system (hash collisions must be harmless).
        circuit, _ = rc_ladder_circuit(8)
        assembler = FastPathAssembler(
            circuit, circuit.compile(), 1e-12, "trapezoidal", 1e-12,
            backend="sparse",
        )
        assembler.begin_run()
        stale = AssemblyPlan.capture(assembler)
        PlanStore().put(spec.topology_hash(), stale)
        plan_store_mod._DEFAULT_STORES.clear()
        poisoned = run(spec)
        _assert_identical(reference, poisoned)
        assert poisoned.perf_stats["plan_cache_misses"] >= 1


# ---------------------------------------------------------------------------
# atomic cache helpers under contention (satellite of PR 9)
# ---------------------------------------------------------------------------

def _hammer_same_path(args):
    path, document, rounds = args
    from repro import cache as worker_cache

    return [worker_cache.atomic_write_json(path, document) for _ in range(rounds)]


class TestCacheContention:
    def test_concurrent_same_key_writes_stay_valid(self, tmp_path):
        """N processes x M same-key writes: the entry stays checksum-valid."""
        path = str(tmp_path / "plans" / "ab" / "abcdef.json")
        document = {"plan_format": 1, "static_rows": list(range(500))}
        reference_path = str(tmp_path / "reference.json")
        assert cache.atomic_write_json(reference_path, document)

        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        with ctx.Pool(4) as pool:
            outcomes = pool.map(
                _hammer_same_path, [(path, document, 10)] * 4
            )
        assert all(all(flags) for flags in outcomes)
        assert cache.read_json(path) == document
        # byte-identical to an uncontended write (atomic replace, no tears)
        with open(path, "rb") as contended, open(reference_path, "rb") as clean:
            assert contended.read() == clean.read()

    def test_put_reread_discipline_reports_failure(self, tmp_path, monkeypatch):
        """A put whose payload cannot round-trip is invalidated, not served."""
        store = PlanStore(root=str(tmp_path), enabled=True)
        plan = AssemblyPlan(n_unknowns=3, backend="dense", linear_only=True)
        monkeypatch.setattr(
            AssemblyPlan, "to_payload",
            lambda self: {"plan_format": "not-an-int"},
        )
        key = "cd" + "0" * 62
        assert store.put(key, plan) is False
        assert not os.path.exists(store.path(key))


# ---------------------------------------------------------------------------
# the service surface
# ---------------------------------------------------------------------------

class TestServiceStats:
    def test_stats_endpoint_reports_both_stores(self, tmp_path, monkeypatch):
        from repro.service import JobServer, ResultStore

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        plan_store_mod._DEFAULT_STORES.clear()
        server = JobServer(
            port=0, workers=1, store=ResultStore(root=str(tmp_path / "results"))
        ).start()
        try:
            with urllib.request.urlopen(
                server.url.rstrip("/") + "/stats", timeout=30
            ) as response:
                payload = json.loads(response.read().decode("utf-8"))
        finally:
            server.close()
        assert set(payload) == {"jobs", "result_store", "plan_store"}
        for block in ("result_store", "plan_store"):
            assert payload[block]["root"]
            assert isinstance(payload[block]["enabled"], bool)
            for counter in ("hits", "misses", "puts"):
                assert isinstance(payload[block][counter], int)

    def test_result_store_counters(self, tmp_path):
        from repro.service import ResultStore

        class _FakeResult:
            def to_dict(self):
                return {"waveforms": {"a": [1.0]}, "times": [0.0], "engine": "x"}

            def save_npz(self, handle):
                raise OSError("no artifact in this test")

        store = ResultStore(root=str(tmp_path))
        assert store.get("aa" + "0" * 62) is None
        assert store.stats == {"hits": 0, "misses": 1, "puts": 0}
        document = store.put("aa" + "0" * 62, _FakeResult())
        assert document is not None
        # the put's verification re-read is not counted as a hit
        assert store.stats == {"hits": 0, "misses": 1, "puts": 1}
        assert store.get("aa" + "0" * 62) is not None
        assert store.stats == {"hits": 1, "misses": 1, "puts": 1}
