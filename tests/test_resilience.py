"""Fault-injection tests of the solver resilience layer.

Every recovery path is dead code until a test can make it run: the
:mod:`repro.resilience.faults` harness plants singular factorizations,
NaN-poisoned solves, forced non-convergence and backend errors at exact
steps/scenarios, and this suite drives each branch of the taxonomy /
retry / quarantine machinery through the circuit, linear-sweep and
RBF-sweep paths — asserting both the recovery *counters* and that a
recovered run reproduces a fault-free one.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import cache
from repro.circuits import (
    Capacitor,
    Circuit,
    Diode,
    GROUND,
    Resistor,
    TransientOptions,
    TransientSolver,
    VoltageSource,
)
from repro.core.newton import NewtonStats, newton_solve_scalar
from repro.resilience import (
    BACKEND_ERROR,
    BackendError,
    FAILURE_KINDS,
    NAN_INF,
    NON_CONVERGENCE,
    NanInfError,
    NonConvergenceError,
    RetryPolicy,
    RunHealth,
    SINGULAR_MATRIX,
    SingularMatrixError,
    SolveFailure,
    error_for,
    faults,
)
from repro.sweep import Scenario, eye_report, linear_link_sweep, rbf_link_sweep
from repro.waveforms.signals import StepWaveform

REL_TOL = 1e-12


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """No test may leak an installed fault plan into the next one."""
    faults.clear_plan()
    yield
    faults.clear_plan()


def _rc_circuit():
    ckt = Circuit()
    ckt.add(VoltageSource("v1", "in", GROUND, StepWaveform(high=1.0, t_start=0.0)))
    ckt.add(Resistor("r1", "in", "out", 1e3))
    ckt.add(Capacitor("c1", "out", GROUND, 1e-12))
    return ckt


def _diode_circuit():
    ckt = Circuit()
    ckt.add(VoltageSource("v1", "in", GROUND, StepWaveform(high=1.5, t_start=0.0)))
    ckt.add(Resistor("r1", "in", "out", 200.0))
    ckt.add(Diode("d1", "out", GROUND))
    ckt.add(Capacitor("c1", "out", GROUND, 1e-13))
    return ckt


def _run(circuit_factory, options=None, duration=2e-10, dt=2e-12):
    solver = TransientSolver(circuit_factory(), dt, options=options)
    result = solver.run(duration)
    return solver, result


def _scenarios(n=3):
    return [
        Scenario(name=f"s{k}", bit_pattern=format(k % 8, "03b"),
                 drive_strength=1.0 + 0.05 * k)
        for k in range(n)
    ]


def _assert_sweep_matches(result, clean, nodes=("near", "far"), tol=REL_TOL):
    for scenario in clean.scenarios:
        for node in nodes:
            a = result.voltage(scenario.name, node)
            b = clean.voltage(scenario.name, node)
            scale = max(np.max(np.abs(b)), 1e-30)
            err = np.max(np.abs(a - b)) / scale
            assert err <= tol, f"{scenario.name}/{node}: rel err {err:.3e}"


# ---------------------------------------------------------------------------
# taxonomy, policy and plan-grammar units
# ---------------------------------------------------------------------------

class TestTaxonomy:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown failure kind"):
            SolveFailure("meltdown")

    def test_to_dict_and_describe(self):
        failure = SolveFailure(
            NAN_INF, step=7, scenario="s3", residual=0.25,
            message="poisoned", context={"site": "test"},
        )
        record = failure.to_dict()
        assert record["kind"] == NAN_INF
        assert record["step"] == 7 and record["scenario"] == "s3"
        assert record["context"] == {"site": "test"}
        line = failure.describe()
        assert "[nan_inf]" in line and "scenario=s3" in line and "step=7" in line

    def test_error_for_maps_every_kind(self):
        expected = {
            NON_CONVERGENCE: NonConvergenceError,
            SINGULAR_MATRIX: SingularMatrixError,
            NAN_INF: NanInfError,
            BACKEND_ERROR: BackendError,
        }
        for kind in FAILURE_KINDS:
            err = error_for(SolveFailure(kind))
            assert isinstance(err, expected[kind])
            assert err.failure.kind == kind

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(damping_boost=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(damping_boost=1.5)
        assert RetryPolicy(max_retries=0).max_retries == 0

    def test_run_health_counts_and_merge(self):
        a = RunHealth()
        assert a.ok
        a.record(SolveFailure(NAN_INF, step=1))
        a.nonconverged_commits += 1
        assert not a.ok and a.total_failures == 1
        b = RunHealth()
        b.record(SolveFailure(NAN_INF, step=2))
        b.retries = 3
        a.merge(b)
        assert a.failure_counts == {NAN_INF: 2}
        assert a.retries == 3 and len(a.events) == 2

    def test_backend_fallback_keeps_run_ok(self):
        health = RunHealth()
        health.note_backend_fallback(SolveFailure(SINGULAR_MATRIX, message="degraded"))
        assert health.ok  # degraded, not failed
        assert health.backend_fallbacks == 1
        assert len(health.events) == 1
        assert "backend_fallbacks=1" in health.summary()


class TestFaultPlan:
    def test_parse_grammar(self):
        plan = faults.parse_plan(
            "singular@1; nan@3:scenario=s07, nonconvergence@*x2; backend_error@5x*"
        )
        assert [f.kind for f in plan] == [
            "singular", "nan", "nonconvergence", "backend_error"
        ]
        assert plan[0].step == 1 and plan[0].count == 1
        assert plan[1].scenario == "s07" and plan[1].step == 3
        assert plan[2].step is None and plan[2].count == 2
        assert plan[3].count is None  # persistent

    @pytest.mark.parametrize("bad", ["nan", "warp@3", "nan@3:foo=bar"])
    def test_bad_entries_rejected(self, bad):
        with pytest.raises(ValueError):
            faults.parse_plan(bad)

    def test_take_consumes_and_logs(self):
        with faults.injected(faults.Fault("nan", step=2)) as plan:
            assert not faults.take("nan", step=1)
            assert faults.take("nan", step=2)
            assert not faults.take("nan", step=2)  # burnt out
            assert plan.fired == [{"kind": "nan", "step": 2, "scenario": None}]
        assert faults.PLAN is None

    def test_env_plan_reload(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "nan@4")
        plan = faults.reload_env_plan()
        assert plan is faults.PLAN and plan.faults[0].step == 4
        monkeypatch.setenv("REPRO_FAULT_PLAN", "")
        assert faults.reload_env_plan() is None
        assert faults.PLAN is None


# ---------------------------------------------------------------------------
# circuit path: strict policy, typed errors, retry ladder
# ---------------------------------------------------------------------------

class TestCircuitStrictPolicy:
    def test_clean_run_health_is_ok(self):
        solver, _ = _run(_diode_circuit)
        health = solver.perf_stats["health"]
        assert health["ok"]
        assert health["failure_counts"] == {}
        assert health["nonconverged_commits"] == 0

    @pytest.mark.parametrize("fast", [True, False])
    def test_nan_raises_typed_error(self, fast):
        solver = TransientSolver(
            _rc_circuit(), 2e-12, options=TransientOptions(fast=fast)
        )
        with faults.injected(faults.Fault("nan", step=3)):
            with pytest.raises(NanInfError) as excinfo:
                solver.run(2e-10)
        assert excinfo.value.failure.step == 3
        health = solver.perf_stats["health"]
        assert health["failure_counts"] == {NAN_INF: 1}
        assert not health["ok"]

    def test_backend_error_raises_typed_error(self):
        solver = TransientSolver(_rc_circuit(), 2e-12)
        with faults.injected(faults.Fault("backend_error", step=2)):
            with pytest.raises(BackendError) as excinfo:
                solver.run(2e-10)
        assert excinfo.value.failure.kind == BACKEND_ERROR
        assert solver.perf_stats["health"]["failure_counts"] == {BACKEND_ERROR: 1}

    def test_forced_nonconvergence_raises_by_default(self):
        # Zero silent commits: the default policy surfaces the failure as a
        # typed error and the health telemetry records it.
        solver = TransientSolver(_diode_circuit(), 2e-12)
        with faults.injected(faults.Fault("nonconvergence", step=5)):
            with pytest.raises(NonConvergenceError) as excinfo:
                solver.run(2e-10)
        assert excinfo.value.failure.step == 5
        health = solver.perf_stats["health"]
        assert health["failure_counts"] == {NON_CONVERGENCE: 1}
        assert health["nonconverged_commits"] == 0

    def test_warn_policy_commits_with_telemetry(self):
        options = TransientOptions(on_nonconvergence="warn")
        solver = TransientSolver(_diode_circuit(), 2e-12, options=options)
        with faults.injected(faults.Fault("nonconvergence", step=5)):
            with pytest.warns(RuntimeWarning, match="without convergence"):
                result = solver.run(2e-10)
        assert np.all(np.isfinite(result.voltage("out")))
        health = solver.perf_stats["health"]
        assert health["nonconverged_commits"] == 1
        assert not health["ok"]

    def test_ignore_policy_commits_silently_but_counts(self, recwarn):
        options = TransientOptions(on_nonconvergence="ignore")
        solver = TransientSolver(_diode_circuit(), 2e-12, options=options)
        with faults.injected(faults.Fault("nonconvergence", step=5)):
            solver.run(2e-10)
        assert not any(isinstance(w.message, RuntimeWarning) for w in recwarn.list)
        assert solver.perf_stats["health"]["nonconverged_commits"] == 1

    def test_nonconvergence_faults_only_affect_nonconvergence_policy(self):
        # A NaN failure must raise even under on_nonconvergence="ignore".
        options = TransientOptions(on_nonconvergence="ignore")
        solver = TransientSolver(_rc_circuit(), 2e-12, options=options)
        with faults.injected(faults.Fault("nan", step=3)):
            with pytest.raises(NanInfError):
                solver.run(2e-10)

    def test_reference_singular_degrades_with_telemetry(self):
        # The reference dense path recovers a singular solve via lstsq and
        # notes the degradation without failing the run.
        options = TransientOptions(fast=False)
        solver = TransientSolver(_rc_circuit(), 2e-12, options=options)
        with faults.injected(faults.Fault("singular", step=4)):
            result = solver.run(2e-10)
        assert np.all(np.isfinite(result.voltage("out")))
        health = solver.perf_stats["health"]
        assert health["ok"]
        assert health["backend_fallbacks"] == 1


class TestCircuitRetryLadder:
    @pytest.mark.parametrize("kind", ["nan", "nonconvergence", "backend_error"])
    def test_transient_fault_recovers_bit_identically(self, kind):
        _, clean = _run(_diode_circuit)
        options = TransientOptions(retry_policy=RetryPolicy(max_retries=2))
        solver = TransientSolver(_diode_circuit(), 2e-12, options=options)
        with faults.injected(faults.Fault(kind, step=5)):
            result = solver.run(2e-10)
        # Retry 1 rewinds and re-runs the step after the injected fault
        # burnt out, so the arithmetic is exactly the fault-free run's.
        assert np.array_equal(result.voltage("out"), clean.voltage("out"))
        health = solver.perf_stats["health"]
        assert health["retried_steps"] == 1
        assert health["recovered_steps"] == 1
        assert health["retries"] == 1
        assert health["dt_halvings"] == 0

    def test_singular_fast_path_recovers_bit_identically(self):
        # Acceptance: a transient singular factorization on the dense
        # linear-only fast path completes through the backend fallback
        # (cached LU dropped, fresh dgesv) with a bit-identical waveform —
        # no step is even retried.
        _, clean = _run(_rc_circuit)
        solver = TransientSolver(_rc_circuit(), 2e-12)
        with faults.injected(faults.Fault("singular", step=6)):
            result = solver.run(2e-10)
        assert np.array_equal(result.voltage("out"), clean.voltage("out"))
        health = solver.perf_stats["health"]
        assert health["ok"]
        assert health["backend_fallbacks"] >= 1
        assert health["retried_steps"] == 0

    def test_persistent_fault_exhausts_retries_and_raises(self):
        options = TransientOptions(
            retry_policy=RetryPolicy(max_retries=2, dt_halving=False)
        )
        solver = TransientSolver(_rc_circuit(), 2e-12, options=options)
        with faults.injected(faults.Fault("nan", step=3, count=None)):
            with pytest.raises(NanInfError):
                solver.run(2e-10)
        health = solver.perf_stats["health"]
        assert health["retries"] == 2
        assert health["recovered_steps"] == 0
        assert health["failure_counts"][NAN_INF] == 3  # initial + 2 retries

    def test_dt_halving_rung_recovers_repeated_nonconvergence(self):
        # The fault survives the plain re-run (count=2), so recovery needs
        # the second rung: boosted damping + the dt/2 sub-step excursion,
        # which does not consult the injector.
        _, clean = _run(_rc_circuit)
        options = TransientOptions(retry_policy=RetryPolicy(max_retries=3))
        solver = TransientSolver(_rc_circuit(), 2e-12, options=options)
        with faults.injected(faults.Fault("nonconvergence", step=4, count=2)):
            result = solver.run(2e-10)
        health = solver.perf_stats["health"]
        assert health["recovered_steps"] == 1
        assert health["retries"] == 2
        assert health["dt_halvings"] == 1
        assert health["damping_boosts"] == 1
        # One step integrated at dt/2 instead of dt: not bit-identical, but
        # at least as accurate — the waveforms agree to integration order.
        assert np.allclose(
            result.voltage("out"), clean.voltage("out"), rtol=1e-3, atol=1e-6
        )

    def test_macromodel_elements_disable_dt_halving(self):
        from repro.circuits.elements import Element
        from repro.circuits.rbf_element import MacromodelElement

        assert Element.supports_local_dt is True
        assert MacromodelElement.supports_local_dt is False


# ---------------------------------------------------------------------------
# sweep paths: quarantine, solo retry, partial results
# ---------------------------------------------------------------------------

class TestLinearSweepFaults:
    DT, DURATION = 1e-11, 2e-9

    def _sweep(self, scenarios, **kwargs):
        return linear_link_sweep(scenarios, dt=self.DT, duration=self.DURATION, **kwargs)

    def test_nan_quarantines_then_solo_recovery(self):
        scenarios = _scenarios(4)
        clean = self._sweep(scenarios).run()
        sweep = self._sweep(scenarios)
        with faults.injected(faults.Fault("nan", step=20, scenario="s2")):
            result = sweep.run()
        assert result.status_of("s2") == "recovered"
        assert all(result.status_of(f"s{k}") == "ok" for k in (0, 1, 3))
        assert result.ok  # every scenario has a waveform
        _assert_sweep_matches(result, clean)
        stats = result.perf_stats
        assert stats["quarantined_scenarios"] == ["s2"]
        assert stats["solo_retries"] == 1
        assert stats["health"]["failure_counts"][NAN_INF] == 1

    def test_nonconvergence_quarantines_under_strict_policy(self):
        scenarios = _scenarios(3)
        clean = self._sweep(scenarios).run()
        sweep = self._sweep(scenarios)
        with faults.injected(faults.Fault("nonconvergence", step=10, scenario="s1")):
            result = sweep.run()
        assert result.status_of("s1") == "recovered"
        _assert_sweep_matches(result, clean)
        assert result.perf_stats["health"]["failure_counts"][NON_CONVERGENCE] == 1

    def test_nonconvergence_warn_policy_commits_in_lockstep(self):
        scenarios = _scenarios(3)
        sweep = self._sweep(
            scenarios, options=TransientOptions(on_nonconvergence="warn")
        )
        with faults.injected(faults.Fault("nonconvergence", step=10, scenario="s1")):
            with pytest.warns(RuntimeWarning, match="without convergence"):
                result = sweep.run()
        # No quarantine: the scenario committed the step per policy.
        assert result.status_of("s1") == "ok"
        assert result.perf_stats["quarantined_scenarios"] == []
        assert result.perf_stats["health"]["nonconverged_commits"] == 1

    def test_singular_block_solve_degrades_in_place(self):
        # The shared-static block solve recovers a singular/poisoned solve
        # through its per-column least-squares fallback: no quarantine,
        # telemetry only.
        scenarios = _scenarios(3)
        clean = self._sweep(scenarios).run()
        sweep = self._sweep(scenarios)
        with faults.injected(faults.Fault("singular")):
            result = sweep.run()
        assert all(result.status_of(sc.name) == "ok" for sc in result.scenarios)
        assert result.perf_stats["health"]["backend_fallbacks"] >= 1
        _assert_sweep_matches(result, clean, tol=1e-9)

    def test_backend_error_on_reference_path_recovers(self):
        scenarios = _scenarios(3)
        options = TransientOptions(fast=False)
        clean = self._sweep(scenarios, options=options).run()
        sweep = self._sweep(scenarios, options=options)
        with faults.injected(faults.Fault("backend_error", step=8, scenario="s0")):
            result = sweep.run()
        assert result.status_of("s0") == "recovered"
        _assert_sweep_matches(result, clean)
        assert result.perf_stats["health"]["failure_counts"][BACKEND_ERROR] == 1

    def test_poisoned_scenario_yields_partial_result(self):
        # Acceptance: 12 scenarios, 1 persistently poisoned -> a partial
        # SweepResult with 11 "ok" waveform sets and 1 structured failure.
        scenarios = _scenarios(12)
        sweep = self._sweep(scenarios)
        with faults.injected(faults.Fault("nan", scenario="s7", count=None)):
            result = sweep.run()
        assert not result.ok
        assert result.failed_scenarios == ["s7"]
        assert len(result.completed_scenarios) == 11
        assert all(
            result.status_of(f"s{k}") == "ok" for k in range(12) if k != 7
        )
        assert result.status_of("s7") == "failed"
        failure = result.failure_of("s7")
        assert failure["kind"] == NAN_INF and failure["scenario"] == "s7"
        # The waveforms of the survivors are present and finite.
        for name in result.completed_scenarios:
            assert np.all(np.isfinite(result.voltage(name, "far")))
        # Accessing the failed scenario names the failure.
        with pytest.raises(KeyError, match="nan_inf"):
            result.result("s7")

    def test_partial_sweep_eye_report_lists_failures(self):
        scenarios = _scenarios(4)
        sweep = self._sweep(scenarios)
        with faults.injected(faults.Fault("nan", scenario="s3", count=None)):
            result = sweep.run()
        report = eye_report(result, "far", bit_time=2e-9, low=0.0, high=1.0)
        assert report.failed == ["s3"]
        assert len(report.rows) == 3
        assert "failed scenarios (no eye): s3" in report.format()
        assert report.to_dict()["failed_scenarios"] == ["s3"]

    def test_sequential_mode_isolates_failures_too(self):
        scenarios = _scenarios(3)
        sweep = self._sweep(scenarios)
        with faults.injected(faults.Fault("nan", scenario="s1", count=None)):
            result = sweep.run_sequential()
        assert result.status_of("s1") == "failed"
        assert result.completed_scenarios == ["s0", "s2"]
        assert result.failures["s1"]["kind"] == NAN_INF


class TestRBFSweepFaults:
    DT, DURATION = 1e-11, 1.5e-9

    def _sweep(self, scenarios, driver_model, receiver_model, **kwargs):
        return rbf_link_sweep(
            scenarios, {None: (driver_model, receiver_model)},
            dt=self.DT, duration=self.DURATION, **kwargs
        )

    def _rbf_scenarios(self, n=3):
        return [
            Scenario(name=f"r{k}", bit_pattern=pattern)
            for k, pattern in enumerate(["010", "0110", "0101"][:n])
        ]

    def test_nan_quarantines_then_solo_recovery(self, driver_model, receiver_model):
        scenarios = self._rbf_scenarios()
        clean = self._sweep(scenarios, driver_model, receiver_model).run()
        sweep = self._sweep(scenarios, driver_model, receiver_model)
        with faults.injected(faults.Fault("nan", step=30, scenario="r1")):
            result = sweep.run()
        assert result.status_of("r1") == "recovered"
        _assert_sweep_matches(result, clean)
        stats = result.perf_stats
        assert stats["quarantined_scenarios"] == ["r1"]
        assert stats["health"]["failure_counts"][NAN_INF] == 1

    def test_nonconvergence_and_backend_error_recover(
        self, driver_model, receiver_model
    ):
        scenarios = self._rbf_scenarios()
        clean = self._sweep(scenarios, driver_model, receiver_model).run()
        sweep = self._sweep(scenarios, driver_model, receiver_model)
        with faults.injected(
            faults.Fault("nonconvergence", step=12, scenario="r0"),
            faults.Fault("backend_error", step=40, scenario="r2"),
        ):
            result = sweep.run()
        assert result.status_of("r0") == "recovered"
        assert result.status_of("r2") == "recovered"
        assert result.status_of("r1") == "ok"
        _assert_sweep_matches(result, clean)
        counts = result.perf_stats["health"]["failure_counts"]
        assert counts[NON_CONVERGENCE] == 1 and counts[BACKEND_ERROR] == 1

    def test_singular_solve_degrades_in_place(self, driver_model, receiver_model):
        scenarios = self._rbf_scenarios(2)
        clean = self._sweep(scenarios, driver_model, receiver_model).run()
        sweep = self._sweep(scenarios, driver_model, receiver_model)
        with faults.injected(faults.Fault("singular", step=25, scenario="r0")):
            result = sweep.run()
        assert all(result.status_of(sc.name) == "ok" for sc in result.scenarios)
        assert result.perf_stats["health"]["backend_fallbacks"] >= 1
        _assert_sweep_matches(result, clean, tol=1e-9)


# ---------------------------------------------------------------------------
# scalar Newton NaN guard
# ---------------------------------------------------------------------------

class TestScalarNewtonNanGuard:
    def test_nan_residual_bails_immediately(self):
        stats = NewtonStats()
        result = newton_solve_scalar(
            lambda x: float("nan"), lambda x: 1.0, 0.0, stats=stats
        )
        assert not result.converged
        assert result.iterations == 0  # no pointless march to the cap
        assert stats.nan_failures == 1 and stats.failures == 1

    def test_nan_mid_iteration_bails(self):
        # Finite at the start, poisoned after the first update.
        calls = {"n": 0}

        def residual(x):
            calls["n"] += 1
            return 1.0 if calls["n"] == 1 else float("nan")

        stats = NewtonStats()
        result = newton_solve_scalar(residual, lambda x: 1.0, 0.0, stats=stats)
        assert not result.converged
        assert result.iterations == 1
        assert stats.nan_failures == 1
        merged = NewtonStats()
        merged.merge(stats)
        assert merged.summary()["nan_failures"] == 1


# ---------------------------------------------------------------------------
# the shared atomic cache
# ---------------------------------------------------------------------------

class TestAtomicCache:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "entry.json")
        payload = {"a": [1, 2, 3], "b": "text"}
        assert cache.atomic_write_json(path, payload)
        assert cache.read_json(path) == payload
        # The on-disk document carries the checksum wrapper.
        with open(path) as handle:
            document = json.load(handle)
        assert document["cache_format"] == cache.CACHE_DOC_FORMAT
        assert document["checksum"] == cache.checksum(payload)

    def test_checksum_mismatch_unlinks(self, tmp_path):
        path = str(tmp_path / "entry.json")
        cache.atomic_write_json(path, {"value": 1})
        with open(path) as handle:
            document = json.load(handle)
        document["payload"]["value"] = 2  # bit-flip without re-checksumming
        with open(path, "w") as handle:
            json.dump(document, handle)
        assert cache.read_json(path) is None
        assert not os.path.exists(path)

    def test_truncated_json_unlinks(self, tmp_path):
        path = str(tmp_path / "entry.json")
        with open(path, "w") as handle:
            handle.write('{"cache_format": 1, "checks')
        assert cache.read_json(path) is None
        assert not os.path.exists(path)

    def test_missing_entry_is_a_miss(self, tmp_path):
        assert cache.read_json(str(tmp_path / "absent.json")) is None

    def test_legacy_entry_passes_through(self, tmp_path):
        path = str(tmp_path / "entry.json")
        with open(path, "w") as handle:
            json.dump({"driver": {}, "receiver": {}}, handle)
        assert cache.read_json(path) == {"driver": {}, "receiver": {}}
        assert os.path.exists(path)  # caller decides whether to invalidate
        cache.invalidate(path)
        assert not os.path.exists(path)

    def test_unserialisable_payload_fails_softly(self, tmp_path):
        path = str(tmp_path / "entry.json")
        assert not cache.atomic_write_json(path, {"bad": object()})
        assert not os.path.exists(path)
