"""Tests for the SPICE-class circuit substrate."""

import numpy as np
import pytest

from repro.circuits import (
    Capacitor,
    Circuit,
    CurrentSource,
    Diode,
    GROUND,
    IdealTransmissionLine,
    Inductor,
    MacromodelElement,
    Mosfet,
    Resistor,
    TransientOptions,
    TransientSolver,
    VoltageSource,
    add_cmos_driver,
    add_cmos_receiver,
)
from repro.circuits.mosfet import level1_drain_current
from repro.waveforms.signals import BitPattern, StepWaveform


def _run(circuit, dt, duration, **kwargs):
    return TransientSolver(circuit, dt).run(duration, **kwargs)


class TestLinearElements:
    def test_resistive_divider(self):
        ckt = Circuit()
        ckt.add(VoltageSource("v1", "in", GROUND, 2.0))
        ckt.add(Resistor("r1", "in", "out", 1000.0))
        ckt.add(Resistor("r2", "out", GROUND, 1000.0))
        res = _run(ckt, 1e-9, 10e-9)
        assert res.voltage("out")[-1] == pytest.approx(1.0, rel=1e-6)

    def test_rc_charging_time_constant(self):
        r, c = 1e3, 1e-12
        ckt = Circuit()
        ckt.add(VoltageSource("v1", "in", GROUND, StepWaveform(high=1.0, t_start=0.0)))
        ckt.add(Resistor("r1", "in", "out", r))
        ckt.add(Capacitor("c1", "out", GROUND, c))
        res = _run(ckt, 1e-12, 5e-9)
        tau = r * c
        idx = np.searchsorted(res.times, tau)
        assert res.voltage("out")[idx] == pytest.approx(1 - np.exp(-1), abs=0.02)
        assert res.voltage("out")[-1] == pytest.approx(1.0, abs=0.01)

    def test_rl_current_rise(self):
        r, ind = 50.0, 1e-9
        ckt = Circuit()
        ckt.add(VoltageSource("v1", "in", GROUND, 1.0))
        ckt.add(Resistor("r1", "in", "mid", r))
        ckt.add(Inductor("l1", "mid", GROUND, ind))
        res = _run(ckt, 1e-12, 1e-9)
        i_final = res.branch_current("l1")[-1]
        assert i_final == pytest.approx(1.0 / r, rel=0.02)

    def test_current_source_into_resistor(self):
        ckt = Circuit()
        ckt.add(CurrentSource("i1", GROUND, "out", 1e-3))
        ckt.add(Resistor("r1", "out", GROUND, 2000.0))
        res = _run(ckt, 1e-9, 5e-9)
        assert res.voltage("out")[-1] == pytest.approx(2.0, rel=1e-6)

    def test_lc_resonance_oscillates(self):
        l, c = 1e-9, 1e-12  # f0 ~ 5 GHz
        ckt = Circuit()
        ckt.add(Capacitor("c1", "n", GROUND, c, v0=1.0))
        ckt.add(Inductor("l1", "n", GROUND, l))
        solver = TransientSolver(ckt, 1e-12)
        res = solver.run(2e-9, initial_voltages={"n": 1.0})
        v = res.voltage("n")
        # oscillation crosses zero several times and stays bounded
        assert np.max(np.abs(v)) < 1.5
        assert np.sum(np.diff(np.sign(v)) != 0) >= 15

    def test_duplicate_element_names_rejected(self):
        ckt = Circuit()
        ckt.add(Resistor("r1", "a", GROUND, 1.0))
        with pytest.raises(ValueError):
            ckt.add(Resistor("r1", "b", GROUND, 1.0))

    def test_element_lookup(self):
        ckt = Circuit()
        r = Resistor("r1", "a", GROUND, 1.0)
        ckt.add(r)
        assert ckt.element("r1") is r
        with pytest.raises(KeyError):
            ckt.element("missing")


class TestNonlinearDevices:
    def test_level1_regions(self):
        # cutoff
        assert level1_drain_current(0.2, 1.0, 0.05, 0.4, 0.0)[0] == 0.0
        # triode vs saturation continuity at vds = vov
        vov = 1.0
        i_triode, _, _ = level1_drain_current(1.4, vov - 1e-9, 0.05, 0.4, 0.0)
        i_sat, _, _ = level1_drain_current(1.4, vov + 1e-9, 0.05, 0.4, 0.0)
        assert i_triode == pytest.approx(i_sat, rel=1e-6)

    def test_mosfet_current_derivatives_fd(self):
        m = Mosfet("m1", "d", "g", "s", polarity="n", k=0.06, vt=0.4, lam=0.05)
        vd, vg, vs = 0.7, 1.5, 0.0
        i0, d_vd, d_vg, d_vs = m.current_and_derivatives(vd, vg, vs)
        h = 1e-7
        assert d_vd == pytest.approx((m.current_and_derivatives(vd + h, vg, vs)[0] - i0) / h, rel=1e-3)
        assert d_vg == pytest.approx((m.current_and_derivatives(vd, vg + h, vs)[0] - i0) / h, rel=1e-3)
        assert d_vs == pytest.approx((m.current_and_derivatives(vd, vg, vs + h)[0] - i0) / h, rel=1e-3)

    def test_pmos_symmetry(self):
        m = Mosfet("mp", "d", "g", "s", polarity="p", k=0.05, vt=0.45)
        # source at 1.8, gate at 0 -> device on, current flows source->drain, so I_DS < 0
        i_ds, *_ = m.current_and_derivatives(0.9, 0.0, 1.8)
        assert i_ds < 0

    def test_nmos_inverter_dc_levels(self):
        ckt = Circuit()
        ckt.add(VoltageSource("vdd", "vdd", GROUND, 1.8))
        ckt.add(VoltageSource("vin", "in", GROUND, 1.8))
        ckt.add(Resistor("rl", "vdd", "out", 10e3))
        ckt.add(Mosfet("mn", "out", "in", GROUND, polarity="n", k=0.06, vt=0.4))
        res = _run(ckt, 1e-11, 2e-9)
        assert res.voltage("out")[-1] < 0.1  # strong pull-down

    def test_diode_forward_and_reverse(self):
        ckt = Circuit()
        ckt.add(VoltageSource("v1", "a", GROUND, 0.7))
        ckt.add(Resistor("r1", "a", "k", 100.0))
        ckt.add(Diode("d1", "k", GROUND))
        res = _run(ckt, 1e-11, 2e-9)
        vk = res.voltage("k")[-1]
        # forward drop of the n = 1.3, Is = 1e-14 A clamp diode at ~ uA level
        assert 0.4 < vk < 0.75
        assert vk < 0.7  # some current must actually flow through the resistor
        # reverse bias: no current
        ckt2 = Circuit()
        ckt2.add(VoltageSource("v1", "a", GROUND, -1.0))
        ckt2.add(Resistor("r1", "a", "k", 100.0))
        ckt2.add(Diode("d1", "k", GROUND))
        res2 = _run(ckt2, 1e-11, 2e-9)
        assert res2.voltage("k")[-1] == pytest.approx(-1.0, abs=1e-3)

    def test_diode_current_continuity_at_knee(self):
        d = Diode("d", "a", "k", knee_voltage=0.9)
        i1, _ = d.current_and_conductance(0.9 - 1e-9)
        i2, _ = d.current_and_conductance(0.9 + 1e-9)
        assert i1 == pytest.approx(i2, rel=1e-6)


class TestTransmissionLine:
    def test_matched_line_delay(self):
        z0, td = 131.0, 0.4e-9
        ckt = Circuit()
        ckt.add(VoltageSource("vs", "src", GROUND, StepWaveform(high=1.0, t_start=0.1e-9, rise_time=20e-12)))
        ckt.add(Resistor("rs", "src", "n1", z0))
        ckt.add(IdealTransmissionLine("tl", "n1", GROUND, "n2", GROUND, z0, td))
        ckt.add(Resistor("rl", "n2", GROUND, z0))
        res = _run(ckt, 5e-12, 2e-9)
        v1, v2 = res.voltage("n1"), res.voltage("n2")
        assert v1[-1] == pytest.approx(0.5, abs=0.01)
        assert v2[-1] == pytest.approx(0.5, abs=0.01)
        t_half_1 = res.times[np.argmax(v1 > 0.25)]
        t_half_2 = res.times[np.argmax(v2 > 0.25)]
        assert (t_half_2 - t_half_1) == pytest.approx(td, abs=2e-11)

    def test_open_line_doubles(self):
        z0, td = 50.0, 0.2e-9
        ckt = Circuit()
        ckt.add(VoltageSource("vs", "src", GROUND, StepWaveform(high=1.0, t_start=0.05e-9, rise_time=10e-12)))
        ckt.add(Resistor("rs", "src", "n1", z0))
        ckt.add(IdealTransmissionLine("tl", "n1", GROUND, "n2", GROUND, z0, td))
        ckt.add(Resistor("rl", "n2", GROUND, 1e9))
        res = _run(ckt, 2e-12, 1.5e-9)
        assert np.max(res.voltage("n2")) == pytest.approx(1.0, abs=0.02)


class TestDevicesAndMacromodelElement:
    def test_driver_follows_input_pattern(self, params):
        ckt = Circuit()
        pattern = BitPattern("010", 2e-9, high=params.vdd, edge_time=0.1e-9, t_start=1e-9)
        add_cmos_driver(ckt, "drv", "out", pattern, params)
        ckt.add(Resistor("rl", "out", GROUND, 1e3))
        res = _run(ckt, 10e-12, 6e-9, record_nodes=["out"])
        v = res.voltage("out")
        t = res.times
        assert v[np.searchsorted(t, 2.5e-9)] < 0.2       # still LOW
        assert v[np.searchsorted(t, 4.5e-9)] > params.vdd - 0.3  # HIGH bit
        assert v[np.searchsorted(t, 6e-9) - 1] < 0.3      # back LOW

    def test_receiver_is_high_impedance_in_rails(self, params):
        ckt = Circuit()
        add_cmos_receiver(ckt, "rx", "pad", params)
        # ramped source (a hard step straight into the input capacitance would
        # excite the well-known trapezoidal-rule current oscillation)
        ckt.add(VoltageSource("vf", "pad", GROUND, StepWaveform(high=0.9, t_start=0.0, rise_time=0.5e-9)))
        res = _run(ckt, 10e-12, 3e-9)
        i = -res.branch_current("vf")[-1]
        assert abs(i) < 1e-5

    def test_receiver_clamps_overshoot(self, params):
        ckt = Circuit()
        add_cmos_receiver(ckt, "rx", "pad", params)
        ckt.add(
            VoltageSource(
                "vf", "pad", GROUND,
                StepWaveform(high=params.vdd + 0.8, t_start=0.0, rise_time=0.5e-9),
            )
        )
        res = _run(ckt, 10e-12, 3e-9)
        i = -res.branch_current("vf")[-1]
        # the upper ESD diode conducts roughly 0.2 mA at 0.8 V of overshoot
        assert i > 5e-5

    def test_macromodel_element_matches_termination_behaviour(self, driver_model, params):
        """The RBF circuit element driving a resistor settles to the same
        operating point as the analytic static curve predicts."""
        from repro.macromodel.driver import LogicStimulus
        from repro.macromodel.library import driver_pulldown_current
        from scipy.optimize import brentq

        dt = 5e-12
        bound = driver_model.bound(LogicStimulus.from_pattern("0", 2e-9))
        ckt = Circuit()
        ckt.add(MacromodelElement("drv", "out", GROUND, bound, dt))
        ckt.add(VoltageSource("vs", "src", GROUND, 1.8))
        ckt.add(Resistor("r", "src", "out", 200.0))
        res = _run(ckt, dt, 3e-9, record_nodes=["out"])
        v_sim = res.voltage("out")[-1]

        def balance(v):
            return float(driver_pulldown_current(v, params)) - (1.8 - v) / 200.0

        v_expected = brentq(balance, 0.0, 1.8)
        assert v_sim == pytest.approx(v_expected, abs=0.05)

    def test_transient_options_validation(self):
        with pytest.raises(ValueError):
            TransientOptions(method="magic")

    def test_solver_rejects_bad_inputs(self):
        ckt = Circuit()
        ckt.add(Resistor("r", "a", GROUND, 1.0))
        with pytest.raises(ValueError):
            TransientSolver(ckt, 0.0)
        solver = TransientSolver(ckt, 1e-12)
        with pytest.raises(ValueError):
            solver.run(0.0)
