"""Shared fixtures: reference device parameters and library macromodels.

The library macromodels take a second or two to fit, so they are built once
per test session.
"""

from __future__ import annotations

import pytest

from repro.macromodel.library import (
    ReferenceDeviceParameters,
    make_reference_driver_macromodel,
    make_reference_receiver_macromodel,
)


@pytest.fixture(scope="session")
def params() -> ReferenceDeviceParameters:
    """Default synthetic 1.8 V CMOS technology parameters."""
    return ReferenceDeviceParameters()


@pytest.fixture(scope="session")
def driver_model(params):
    """Session-wide analytic reference driver macromodel."""
    return make_reference_driver_macromodel(params)


@pytest.fixture(scope="session")
def receiver_model(params):
    """Session-wide analytic reference receiver macromodel."""
    return make_reference_receiver_macromodel(params)
