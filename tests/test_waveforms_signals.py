"""Unit tests for the stimulus waveform generators."""

import numpy as np
import pytest

from repro.waveforms.signals import (
    BitPattern,
    GaussianPulse,
    PiecewiseLinearWaveform,
    RaisedCosineEdge,
    SampledWaveform,
    StepWaveform,
    TrapezoidalPulse,
    bit_pattern_waveform,
    gaussian_pulse,
    trapezoid,
)


class TestStepWaveform:
    def test_levels_before_and_after(self):
        step = StepWaveform(low=0.2, high=1.5, t_start=1e-9, rise_time=0.0)
        assert step(0.0) == pytest.approx(0.2)
        assert step(2e-9) == pytest.approx(1.5)

    def test_linear_ramp_midpoint(self):
        step = StepWaveform(low=0.0, high=2.0, t_start=0.0, rise_time=1e-9)
        assert step(0.5e-9) == pytest.approx(1.0)

    def test_vectorised_evaluation(self):
        step = StepWaveform(high=1.0, t_start=1.0, rise_time=0.0)
        out = step(np.array([0.0, 0.5, 1.5, 2.0]))
        assert out.shape == (4,)
        np.testing.assert_allclose(out, [0.0, 0.0, 1.0, 1.0])

    def test_falling_step(self):
        step = StepWaveform(low=1.8, high=0.0, t_start=0.0, rise_time=1e-9)
        assert step(-1.0) == pytest.approx(1.8)
        assert step(2e-9) == pytest.approx(0.0)


class TestTrapezoidalPulse:
    def test_plateau_value(self):
        pulse = trapezoid(0.0, 1.0, 1e-9, 0.1e-9, 1e-9, 0.1e-9)
        assert pulse(1.5e-9) == pytest.approx(1.0)

    def test_returns_to_low_after_fall(self):
        pulse = trapezoid(0.0, 1.0, 0.0, 0.1e-9, 1e-9, 0.1e-9)
        assert pulse(5e-9) == pytest.approx(0.0)

    def test_rise_midpoint(self):
        pulse = TrapezoidalPulse(low=0.0, high=2.0, t_start=0.0, rise_time=1e-9, width=1e-9, fall_time=1e-9)
        assert pulse(0.5e-9) == pytest.approx(1.0)

    def test_value_before_start(self):
        pulse = TrapezoidalPulse(low=-0.5, high=1.0, t_start=1e-9)
        assert pulse(0.0) == pytest.approx(-0.5)


class TestRaisedCosineEdge:
    def test_endpoints(self):
        edge = RaisedCosineEdge(low=0.0, high=1.8, t_start=0.0, rise_time=1e-9)
        assert edge(0.0) == pytest.approx(0.0)
        assert edge(1e-9) == pytest.approx(1.8)

    def test_midpoint_is_halfway(self):
        edge = RaisedCosineEdge(low=0.0, high=1.0, t_start=0.0, rise_time=2e-9)
        assert edge(1e-9) == pytest.approx(0.5)

    def test_monotonic(self):
        edge = RaisedCosineEdge(rise_time=1e-9)
        t = np.linspace(0, 1e-9, 50)
        assert np.all(np.diff(edge(t)) >= 0)


class TestGaussianPulse:
    def test_peak_at_center(self):
        pulse = GaussianPulse(amplitude=2.0, t_center=1e-9, sigma=0.1e-9)
        assert pulse(1e-9) == pytest.approx(2.0)

    def test_bandwidth_round_trip(self):
        pulse = GaussianPulse.from_bandwidth(1.0, 9.2e9)
        assert pulse.bandwidth_hz == pytest.approx(9.2e9)

    def test_causal_default_centering(self):
        pulse = GaussianPulse.from_bandwidth(2000.0, 9.2e9)
        # essentially zero at t = 0 (centred at 4 sigma)
        assert abs(pulse(0.0)) < 2000.0 * 4e-4

    def test_symmetry(self):
        pulse = GaussianPulse(amplitude=1.0, t_center=0.0, sigma=1e-9)
        assert pulse(0.3e-9) == pytest.approx(pulse(-0.3e-9))


class TestPiecewiseLinear:
    def test_interpolation(self):
        pwl = PiecewiseLinearWaveform([0.0, 1.0, 2.0], [0.0, 2.0, 0.0])
        assert pwl(0.5) == pytest.approx(1.0)
        assert pwl(1.5) == pytest.approx(1.0)

    def test_constant_extension(self):
        pwl = PiecewiseLinearWaveform([0.0, 1.0], [1.0, 3.0])
        assert pwl(-5.0) == pytest.approx(1.0)
        assert pwl(10.0) == pytest.approx(3.0)

    def test_rejects_non_monotonic_times(self):
        with pytest.raises(ValueError):
            PiecewiseLinearWaveform([0.0, 1.0, 0.5], [0.0, 1.0, 2.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PiecewiseLinearWaveform([0.0, 1.0], [0.0, 1.0, 2.0])


class TestSampledWaveform:
    def test_replays_samples(self):
        wave = SampledWaveform(0.0, 1e-9, [0.0, 1.0, 2.0, 3.0])
        assert wave(2e-9) == pytest.approx(2.0)

    def test_interpolates_between_samples(self):
        wave = SampledWaveform(0.0, 1e-9, [0.0, 2.0])
        assert wave(0.5e-9) == pytest.approx(1.0)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            SampledWaveform(0.0, 0.0, [0.0, 1.0])


class TestBitPattern:
    def test_paper_010_levels(self):
        wave = BitPattern(pattern="010", bit_time=2e-9, low=0.0, high=1.8, edge_time=0.1e-9)
        assert wave(1.0e-9) == pytest.approx(0.0)
        assert wave(3.0e-9) == pytest.approx(1.8)
        assert wave(5.0e-9) == pytest.approx(0.0)

    def test_edge_midpoint(self):
        wave = BitPattern(pattern="01", bit_time=1e-9, high=1.0, edge_time=0.2e-9)
        assert wave(1.1e-9) == pytest.approx(0.5)

    def test_duration(self):
        wave = bit_pattern_waveform("0110", 2e-9)
        assert wave.duration == pytest.approx(8e-9)

    def test_rejects_bad_pattern(self):
        with pytest.raises(ValueError):
            BitPattern(pattern="01x", bit_time=1e-9)

    def test_rejects_non_positive_bit_time(self):
        with pytest.raises(ValueError):
            BitPattern(pattern="01", bit_time=0.0)

    def test_scalar_and_array_agree(self):
        wave = BitPattern(pattern="010", bit_time=2e-9, high=1.8)
        ts = np.array([0.5e-9, 2.5e-9, 4.5e-9])
        arr = wave(ts)
        for t, v in zip(ts, arr):
            assert wave(float(t)) == pytest.approx(v)


class TestComposition:
    def test_sum_and_scale(self):
        a = StepWaveform(high=1.0, t_start=0.0)
        b = StepWaveform(high=2.0, t_start=0.0)
        combo = a + 0.5 * b
        assert combo(1.0) == pytest.approx(2.0)

    def test_shift(self):
        step = StepWaveform(high=1.0, t_start=0.0, rise_time=0.0)
        shifted = step.shifted(1.0)
        assert shifted(0.5) == pytest.approx(0.0)
        assert shifted(1.5) == pytest.approx(1.0)

    def test_gaussian_helper(self):
        pulse = gaussian_pulse(2000.0, 9.2e9)
        assert pulse.amplitude == pytest.approx(2000.0)
