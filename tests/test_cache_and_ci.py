"""Disk-cache robustness under concurrent CI runs, and CI pipeline validity."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.experiments import devices as dev

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
WORKFLOW = os.path.join(REPO_ROOT, ".github", "workflows", "ci.yml")
LINEAR_JOB = os.path.join("examples", "jobs", "linear_link.json")


def _invoke_cli(*args: str, fault_plan: str | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = fault_plan
    else:
        env.pop("REPRO_FAULT_PLAN", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )


class TestResilienceCLI:
    def test_clean_run_prints_health_and_exits_zero(self):
        out = _invoke_cli("run", LINEAR_JOB, "--quick")
        assert out.returncode == 0, out.stderr
        assert "health:" in out.stdout
        assert "ok=True" in out.stdout

    def test_resilience_flags_are_accepted(self):
        out = _invoke_cli(
            "run", LINEAR_JOB, "--quick",
            "--max-retries", "2", "--on-nonconvergence", "warn",
        )
        assert out.returncode == 0, out.stderr
        assert "health:" in out.stdout

    def test_poisoned_scenario_exits_nonzero_with_taxonomy_line(self):
        out = _invoke_cli(
            "run", LINEAR_JOB, "--quick",
            fault_plan="nan@*x*:scenario=010/weak-load",
        )
        assert out.returncode == 3, out.stdout + out.stderr
        assert "FAILED scenario 010/weak-load" in out.stderr
        assert "nan_inf" in out.stderr
        # The other scenarios still completed and were summarised.
        assert "health:" in out.stdout

    def test_transient_fault_recovers_to_exit_zero(self):
        out = _invoke_cli(
            "run", LINEAR_JOB, "--quick",
            fault_plan="nan@5:scenario=010/nominal",
        )
        assert out.returncode == 0, out.stdout + out.stderr
        assert "health:" in out.stdout
        assert "nan_inf=1" in out.stdout

    def test_nonconvergence_warn_override_commits(self):
        out = _invoke_cli(
            "run", LINEAR_JOB, "--quick", "--on-nonconvergence", "warn",
            fault_plan="nonconvergence@5:scenario=010/nominal",
        )
        assert out.returncode == 0, out.stdout + out.stderr
        assert "nonconverged_commits=1" in out.stdout


class TestIdentificationCacheRobustness:
    def test_corrupt_entry_is_removed_and_reidentified(
        self, tmp_path, monkeypatch, params, driver_model, receiver_model
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        monkeypatch.setattr(dev, "_CACHE", {})
        calls = {"driver": 0, "receiver": 0}

        def fake_driver(p, n_centers, seed):
            calls["driver"] += 1
            return driver_model

        def fake_receiver(p, n_centers, seed):
            calls["receiver"] += 1
            return receiver_model

        monkeypatch.setattr(dev, "_identify_driver", fake_driver)
        monkeypatch.setattr(dev, "_identify_receiver", fake_receiver)

        path = dev.identification_cache_path(params, 10, 0)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"driver": {"truncated by a concurr')

        models = dev.identified_reference_macromodels(params, n_centers=10, seed=0)
        # Corrupt entry fell back to (stubbed) re-identification, did not raise.
        assert calls == {"driver": 1, "receiver": 1}
        assert models.source == "identified"
        # The entry was rewritten as a checksum-wrapped cache document.
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert set(document) == {"cache_format", "checksum", "payload"}
        assert set(document["payload"]) == {"driver", "receiver"}

        # A fresh process (cleared memory cache) now loads it from disk.
        monkeypatch.setattr(dev, "_CACHE", {})
        again = dev.identified_reference_macromodels(params, n_centers=10, seed=0)
        assert again.source == "identified (disk cache)"
        assert calls == {"driver": 1, "receiver": 1}

    def test_corrupt_entry_is_unlinked_on_load_failure(self, tmp_path, params):
        path = str(tmp_path / "entry.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json at all")
        assert dev._load_identified_from_disk(path, params) is None
        assert not os.path.exists(path)

    def test_structurally_wrong_entry_also_recovers(self, tmp_path, params):
        path = str(tmp_path / "entry.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"driver": {"wrong": "schema"}, "receiver": {}}, handle)
        assert dev._load_identified_from_disk(path, params) is None
        assert not os.path.exists(path)


class TestCIPipeline:
    @pytest.fixture(scope="class")
    def workflow(self):
        yaml = pytest.importorskip("yaml")
        with open(WORKFLOW, "r", encoding="utf-8") as handle:
            parsed = yaml.safe_load(handle)
        assert isinstance(parsed, dict)
        return parsed

    def test_workflow_parses_and_has_expected_jobs(self, workflow):
        assert {"test", "lint", "nightly-full"} <= set(workflow["jobs"])

    def test_quick_tier_excludes_slow_and_spans_two_pythons(self, workflow):
        test_job = workflow["jobs"]["test"]
        versions = test_job["strategy"]["matrix"]["python-version"]
        assert len(versions) == 2
        commands = " ".join(
            step.get("run", "") for step in test_job["steps"] if isinstance(step, dict)
        )
        assert 'not slow' in commands
        assert "pip install -e" in commands
        # pip caching is enabled on the setup-python step
        setup = next(
            step for step in test_job["steps"]
            if "setup-python" in str(step.get("uses", ""))
        )
        assert setup["with"]["cache"] == "pip"

    def test_quick_tier_runs_cli_smoke(self, workflow):
        test_job = workflow["jobs"]["test"]
        commands = " ".join(
            step.get("run", "") for step in test_job["steps"] if isinstance(step, dict)
        )
        assert "python -m repro run examples/jobs/linear_link.json --quick" in commands
        assert "python -m repro run examples/jobs/sparse_ladder.json --quick" in commands
        assert "python -m repro list-engines" in commands
        # the smoke steps must actually assert on the artifacts: a waveform
        # in the linear result, the sparse backend + its single symbolic
        # factorization in the sparse one
        assert "waveforms" in commands
        assert "symbolic_factorizations" in commands
        uploads = [
            step for step in test_job["steps"]
            if "upload-artifact" in str(step.get("uses", ""))
        ]
        assert uploads and "linear_link.result.json" in uploads[0]["with"]["path"]
        assert "sparse_ladder.result.json" in uploads[0]["with"]["path"]

    def test_quick_tier_runs_backend_smoke(self, workflow):
        # The backend-equivalence suite runs as its own named step on both
        # python versions (the matrix covers them).
        test_job = workflow["jobs"]["test"]
        commands = [
            step.get("run", "") for step in test_job["steps"] if isinstance(step, dict)
        ]
        assert any(
            "-k backend" in command and 'not slow' in command for command in commands
        )

    def test_quick_tier_runs_banks_smoke(self, workflow):
        # The element-bank differential suite (banked vs scalar stamping)
        # runs as its own named quick-tier step.
        test_job = workflow["jobs"]["test"]
        commands = [
            step.get("run", "") for step in test_job["steps"] if isinstance(step, dict)
        ]
        assert any(
            '-k "banks"' in command and 'not slow' in command for command in commands
        )

    def test_quick_tier_runs_resilience_smoke(self, workflow):
        # The fault-injection/retry/quarantine suite runs as its own named
        # quick-tier step.
        test_job = workflow["jobs"]["test"]
        commands = [
            step.get("run", "") for step in test_job["steps"] if isinstance(step, dict)
        ]
        assert any(
            "-k resilience" in command and 'not slow' in command
            for command in commands
        )

    def test_nightly_runs_resilience_fault_matrix(self, workflow):
        # The nightly tier drives the full resilience suite plus CLI-level
        # fault plans: a transient fault that must recover (exit 0) and a
        # poisoned scenario that must exit 3.
        nightly = workflow["jobs"]["nightly-full"]
        commands = " ".join(
            step.get("run", "") for step in nightly["steps"] if isinstance(step, dict)
        )
        assert "tests/test_resilience.py" in commands
        assert "REPRO_FAULT_PLAN=" in commands
        assert "-eq 3" in commands

    def test_coverage_job_gates_and_uploads(self, workflow):
        # The coverage job measures the quick tier over the installed
        # package, fails below the pinned floor and uploads the XML report.
        coverage = workflow["jobs"]["coverage"]
        commands = " ".join(
            step.get("run", "") for step in coverage["steps"] if isinstance(step, dict)
        )
        assert "--cov=repro" in commands
        assert "--cov-report=xml" in commands
        floor = int(commands.split("--cov-fail-under=")[1].split()[0])
        assert floor >= 70  # pinned below the measured seed value, not token
        uploads = [
            step for step in coverage["steps"]
            if "upload-artifact" in str(step.get("uses", ""))
        ]
        assert uploads and "coverage.xml" in uploads[0]["with"]["path"]
        # the tool backing the flag is a declared dev dependency
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py310
            pytest.skip("tomllib unavailable")
        with open(os.path.join(REPO_ROOT, "pyproject.toml"), "rb") as handle:
            pyproject = tomllib.load(handle)
        dev = pyproject["project"]["optional-dependencies"]["dev"]
        assert any(dep.startswith("pytest-cov") for dep in dev)

    def test_nightly_runs_slow_tier_and_perf_smoke(self, workflow):
        nightly = workflow["jobs"]["nightly-full"]
        commands = " ".join(
            step.get("run", "") for step in nightly["steps"] if isinstance(step, dict)
        )
        assert "bench_perf_report.py" in commands and "--min-speedup 1.0" in commands
        assert "bench_sweep.py" in commands
        assert "bench_sparse.py --quick" in commands
        uploads = [step for step in nightly["steps"] if "upload-artifact" in str(step.get("uses", ""))]
        assert uploads and "BENCH_perf.json" in uploads[0]["with"]["path"]
        assert "BENCH_sparse.json" in uploads[0]["with"]["path"]

    def test_triggers_include_pushes_prs_and_schedule(self, workflow):
        # pyyaml parses the bare `on:` key as boolean True (YAML 1.1).
        triggers = workflow.get("on", workflow.get(True))
        assert "pull_request" in triggers
        assert "push" in triggers
        assert "schedule" in triggers

    def test_slow_marker_is_registered(self):
        # The quick tier depends on `-m "not slow"` deselecting, not erroring.
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py310
            pytest.skip("tomllib unavailable")
        with open(os.path.join(REPO_ROOT, "pyproject.toml"), "rb") as handle:
            pyproject = tomllib.load(handle)
        markers = pyproject["tool"]["pytest"]["ini_options"]["markers"]
        assert any(m.startswith("slow") for m in markers)
