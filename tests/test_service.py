"""End-to-end tests of the simulation service daemon (:mod:`repro.service`).

Every test talks real HTTP to a live :class:`~repro.service.JobServer`
bound to an ephemeral port — the same transport a remote client uses.
The acceptance contract of the content-addressed cache is pinned here:
submitting the same spec twice returns *byte-identical* results with
exactly zero additional solver work (the engine adapter is counted, not
trusted), and the duplicate is served from cache even after the daemon
restarts.
"""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import engines as engines_mod
from repro.resilience import faults
from repro.service import JobServer, ResultStore


# ---------------------------------------------------------------------------
# HTTP helpers
# ---------------------------------------------------------------------------

def _get(server: JobServer, path: str):
    with urllib.request.urlopen(server.url.rstrip("/") + path, timeout=30) as response:
        return response.status, json.loads(response.read())


def _get_bytes(server: JobServer, path: str) -> bytes:
    with urllib.request.urlopen(server.url.rstrip("/") + path, timeout=30) as response:
        return response.read()


def _post(server: JobServer, path: str, document: dict):
    request = urllib.request.Request(
        server.url.rstrip("/") + path,
        data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _wait(server: JobServer, job_id: str, timeout: float = 120.0) -> dict:
    """Poll ``GET /jobs/<id>`` over HTTP until the job finishes."""
    job = server.manager.wait(job_id, timeout=timeout)
    assert job.state in ("done", "failed")
    status, doc = _get(server, f"/jobs/{job_id}")
    assert status == 200
    return doc


# ---------------------------------------------------------------------------
# small, fast job specs
# ---------------------------------------------------------------------------

def _sweep_spec(label: str = "service sweep") -> dict:
    """A two-scenario linear-family sweep: no macromodels, ~100 steps."""
    return {
        "format_version": 1,
        "kind": "sweep",
        "label": label,
        "duration": 1.0e-9,
        "scenarios": [
            {"name": "010/nominal", "bit_pattern": "010"},
            {"name": "010/weak", "bit_pattern": "010", "corner": {"load_resistance": 350.0}},
        ],
        "engine": {"dt": 1e-11, "sweep_family": "linear"},
    }


def _circuit_spec(label: str = "service circuit") -> dict:
    """A short RBF-macromodel circuit transient (~100 steps)."""
    return {
        "format_version": 1,
        "kind": "circuit",
        "label": label,
        "duration": 1.0e-9,
        "engine": {"dt": 1e-11, "variant": "rbf"},
    }


@pytest.fixture()
def server(tmp_path):
    """A live daemon on an ephemeral port with a test-local result store."""
    srv = JobServer(port=0, workers=2, store=ResultStore(root=str(tmp_path / "results")))
    srv.start()
    yield srv
    srv.close()


# ---------------------------------------------------------------------------
# plumbing endpoints
# ---------------------------------------------------------------------------

def test_healthz_and_engines(server):
    status, health = _get(server, "/healthz")
    assert status == 200
    assert health["status"] == "ok"
    assert health["jobs"]["workers"] == 2
    assert health["result_store"]["enabled"] is True

    status, engines = _get(server, "/engines")
    assert status == 200
    kinds = {entry["kind"] for entry in engines["engines"]}
    assert kinds == {"circuit", "fdtd1d", "fdtd3d", "sweep"}
    assert "sparse_mna" in engines["engine_options"]
    assert "batch_prepare" in engines["engine_options"]


def test_invalid_requests(server):
    # malformed spec -> 400 with the validation message, no job created
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(server, "/jobs", {"format_version": 1, "kind": "warp-drive"})
    assert err.value.code == 400
    assert "invalid spec" in json.loads(err.value.read())["error"]

    # non-JSON body -> 400
    request = urllib.request.Request(
        server.url.rstrip("/") + "/jobs", data=b"not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(request, timeout=30)
    assert err.value.code == 400

    # unknown job / route -> 404
    for path in ("/jobs/deadbeef", "/jobs/deadbeef/result", "/nope"):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, path)
        assert err.value.code == 404

    status, health = _get(server, "/healthz")
    assert health["jobs"]["submitted"] == 0


# ---------------------------------------------------------------------------
# end-to-end submit -> poll -> fetch
# ---------------------------------------------------------------------------

def test_circuit_job_end_to_end(server):
    status, submitted = _post(server, "/jobs", _circuit_spec())
    assert status == 202
    assert submitted["state"] in ("queued", "running")
    assert submitted["cache_hit"] is False

    doc = _wait(server, submitted["job_id"])
    assert doc["state"] == "done"
    assert doc["kind"] == "circuit"
    assert doc["spec_hash"] == submitted["spec_hash"]
    assert doc["health"]["ok"] is True

    status, result = _get(server, f"/jobs/{submitted['job_id']}/result")
    assert status == 200
    assert result["engine"] == "spice-rbf"
    assert set(result["waveforms"]) >= {"near_end", "far_end"}
    assert len(result["times"]) == result["n_samples"] > 50

    raw = _get_bytes(server, f"/jobs/{submitted['job_id']}/waveforms")
    npz = np.load(io.BytesIO(raw))
    assert "times" in npz.files
    assert "w:far_end" in npz.files
    assert npz["times"].shape == npz["w:far_end"].shape


def test_sweep_job_end_to_end(server):
    status, submitted = _post(server, "/jobs", _sweep_spec())
    assert status == 202
    doc = _wait(server, submitted["job_id"])
    assert doc["state"] == "done"
    assert doc["engine"] == "sweep-linear"

    status, result = _get(server, f"/jobs/{submitted['job_id']}/result")
    assert status == 200
    assert "010/nominal/far" in result["waveforms"]
    assert "010/weak/far" in result["waveforms"]
    assert result["perf_stats"]["shared_factorizations"] >= 1

    status, listing = _get(server, "/jobs")
    assert [j["job_id"] for j in listing["jobs"]] == [submitted["job_id"]]


def test_job_listing_fields_and_state_filter(server):
    """``GET /jobs``: submission order, operator fields, ``?state=`` filter."""
    ids = []
    for label in ("listing-a", "listing-b"):
        status, submitted = _post(server, "/jobs", _sweep_spec(label))
        assert status in (200, 202)
        ids.append(submitted["job_id"])
        _wait(server, submitted["job_id"])

    status, listing = _get(server, "/jobs")
    assert status == 200
    assert [j["job_id"] for j in listing["jobs"]] == ids
    for entry in listing["jobs"]:
        # the operator's view: id, state, hash and timestamps on every row
        assert entry["state"] == "done"
        assert len(entry["spec_hash"]) == 64
        assert entry["submitted_at"] <= entry["finished_at"]

    status, done = _get(server, "/jobs?state=done")
    assert status == 200
    assert [j["job_id"] for j in done["jobs"]] == ids
    status, queued = _get(server, "/jobs?state=queued")
    assert status == 200
    assert queued["jobs"] == []
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/jobs?state=bogus")
    assert excinfo.value.code == 400
    assert "bogus" in json.loads(excinfo.value.read())["error"]


def test_sharded_sweep_job_surfaces_shard_telemetry(server):
    """A sweep with engine.workers=2 fans out in the daemon and reports it."""
    spec = _sweep_spec("sharded service sweep")
    spec["engine"]["workers"] = 2
    status, submitted = _post(server, "/jobs", spec)
    assert status in (200, 202)
    doc = _wait(server, submitted["job_id"], timeout=240.0)
    assert doc["state"] == "done"
    # the two scenarios sit in different corner groups -> two shards
    assert doc["shards"] == 2
    assert doc["parallel_efficiency"] is None or 0.0 < doc["parallel_efficiency"] <= 1.0

    status, result = _get(server, f"/jobs/{submitted['job_id']}/result")
    assert status == 200
    assert result["perf_stats"]["shards"] == 2
    assert "010/nominal/far" in result["waveforms"]


# ---------------------------------------------------------------------------
# the content-addressed cache contract
# ---------------------------------------------------------------------------

@pytest.fixture()
def counted_sweep_engine():
    """Wrap the sweep adapter so every *actual* solve is counted."""
    info = engines_mod.get_engine("sweep")
    calls: list[str] = []

    def counting_runner(spec, models=None):
        calls.append(spec.content_hash())
        return info.runner(spec, models=models)

    engines_mod.register_engine(info.kind, summary=info.summary)(counting_runner)
    try:
        yield calls
    finally:
        engines_mod.register_engine(info.kind, summary=info.summary)(info.runner)


def test_duplicate_submission_is_served_from_cache(server, counted_sweep_engine):
    spec = _sweep_spec("cache-hit contract")

    status1, first = _post(server, "/jobs", spec)
    _wait(server, first["job_id"])
    status, doc1 = _get(server, f"/jobs/{first['job_id']}")
    assert doc1["cache_hit"] is False

    # identical spec, second submission: done on arrival, zero solver work
    status2, second = _post(server, "/jobs", spec)
    assert status2 == 200
    assert second["state"] == "done"
    assert second["cache_hit"] is True
    assert second["spec_hash"] == first["spec_hash"]
    assert second["job_id"] != first["job_id"]

    status, doc2 = _get(server, f"/jobs/{second['job_id']}")
    assert doc2["cache_hit"] is True

    # the engine adapter ran exactly once: the factorization/accept
    # counters of the second result *cannot* have advanced because no
    # engine call produced them
    assert len(counted_sweep_engine) == 1
    stats = server.manager.stats()
    assert stats["solves"] == 1
    assert stats["cache_hits"] == 1

    body1 = _get_bytes(server, f"/jobs/{first['job_id']}/result")
    body2 = _get_bytes(server, f"/jobs/{second['job_id']}/result")
    assert body1 == body2  # byte-identical, perf_stats included

    result = json.loads(body1)
    assert json.loads(body2)["perf_stats"] == result["perf_stats"]

    npz1 = _get_bytes(server, f"/jobs/{first['job_id']}/waveforms")
    npz2 = _get_bytes(server, f"/jobs/{second['job_id']}/waveforms")
    assert npz1 == npz2


def test_cache_survives_daemon_restart(tmp_path, counted_sweep_engine):
    root = str(tmp_path / "results")
    spec = _sweep_spec("restart contract")

    first_daemon = JobServer(port=0, workers=1, store=ResultStore(root=root)).start()
    try:
        _, first = _post(first_daemon, "/jobs", spec)
        _wait(first_daemon, first["job_id"])
        body1 = _get_bytes(first_daemon, f"/jobs/{first['job_id']}/result")
    finally:
        first_daemon.close()

    # a fresh daemon process-equivalent: new manager, same store directory
    second_daemon = JobServer(port=0, workers=1, store=ResultStore(root=root)).start()
    try:
        status, second = _post(second_daemon, "/jobs", spec)
        assert status == 200
        assert second["state"] == "done"
        assert second["cache_hit"] is True
        body2 = _get_bytes(second_daemon, f"/jobs/{second['job_id']}/result")
        assert second_daemon.manager.stats()["solves"] == 0
    finally:
        second_daemon.close()

    assert body1 == body2
    assert len(counted_sweep_engine) == 1  # one solve across both daemons


def test_failed_jobs_are_not_cached(server, counted_sweep_engine):
    spec = _sweep_spec("failure is not cached")
    with faults.injected(faults.Fault("nan", count=None)):
        _, failed = _post(server, "/jobs", spec)
        doc = _wait(server, failed["job_id"])
        assert doc["state"] == "failed"
    # after the fault clears, the same spec solves fresh (no poisoned cache)
    _, retry = _post(server, "/jobs", spec)
    doc = _wait(server, retry["job_id"])
    assert doc["state"] == "done"
    assert doc["cache_hit"] is False
    assert len(counted_sweep_engine) == 2


# ---------------------------------------------------------------------------
# failure taxonomy over HTTP
# ---------------------------------------------------------------------------

def test_fault_plan_job_reports_taxonomy(server):
    spec = _sweep_spec("fault plan over http")
    with faults.injected(faults.Fault("nan", count=None)):
        status, submitted = _post(server, "/jobs", spec)
        assert status == 202
        doc = _wait(server, submitted["job_id"])

    # a solver failure is a job state, not a transport error
    assert doc["state"] == "failed"
    assert doc["failures"], doc
    assert {f["kind"] for f in doc["failures"]} == {"nan_inf"}
    assert doc["error"]

    stats = server.manager.stats()
    assert stats["failed"] == 1
    assert stats["completed"] == 0
